// Package orchestrator runs CLASP's measurement campaigns (§3.2): it plans
// how many measurement VMs a region needs for one test per server per hour
// (each VM runs one test at a time, at most 17 per hour), deploys them
// across availability zones, executes hourly rounds in randomised order,
// captures packet headers and SoMeta metadata, runs follow-up traceroutes,
// uploads results to the region's storage bucket, and indexes them into the
// time-series store.
package orchestrator

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math/rand"
	"time"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/cloud"
	"github.com/clasp-measurement/clasp/internal/flowstats"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/someta"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/traceroute"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// TestsPerVMPerHour is the paper's per-VM budget: each throughput test
// takes up to 120 s, plus 20 min of traceroutes and 5 min of uploads per
// hour, leaving at most 17 tests.
const TestsPerVMPerHour = 17

// PlanVMs returns the number of measurement VMs needed to test n servers
// hourly.
func PlanVMs(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + TestsPerVMPerHour - 1) / TestsPerVMPerHour
}

// Sink consumes measurement records as the campaign produces them, so
// full-scale runs need not hold every record in memory.
type Sink interface {
	Record(analysis.Measurement)
}

// SliceSink collects records into a slice.
type SliceSink struct {
	Out []analysis.Measurement
}

// Record implements Sink.
func (s *SliceSink) Record(m analysis.Measurement) { s.Out = append(s.Out, m) }

// StoreSink indexes records into a time-series store.
type StoreSink struct {
	Store *tsdb.Store
}

// Record implements Sink.
func (s *StoreSink) Record(m analysis.Measurement) {
	// Insert errors are impossible for the generated tag values.
	_ = s.Store.Insert("speedtest", tsdb.Tags{
		"server": fmt.Sprintf("%d", m.ServerID),
		"region": m.Region,
		"tier":   m.Tier.String(),
		"dir":    m.Dir.String(),
	}, m.Time, map[string]float64{
		"mbps":   m.Mbps,
		"rtt_ms": m.RTTms,
		"loss":   m.Loss,
	})
}

// MultiSink fans records out to several sinks.
type MultiSink []Sink

// Record implements Sink.
func (ms MultiSink) Record(m analysis.Measurement) {
	for _, s := range ms {
		s.Record(m)
	}
}

// Config describes one campaign in one region.
type Config struct {
	Region  string
	Servers []*topology.Server
	// Tiers to measure each server over. Topology-based campaigns use
	// {Premium}; differential campaigns use {Premium, Standard} with a
	// dedicated VM pair per tier.
	Tiers []bgp.Tier
	// Start and Days bound the campaign in virtual time.
	Start time.Time
	Days  int
	// TestDurationSec is the per-test transfer duration (default 15).
	TestDurationSec float64
	// DownlinkMbps/UplinkMbps are the tc caps (defaults 1000/100, §3.2).
	DownlinkMbps float64
	UplinkMbps   float64
	// Seed drives the per-hour randomised test order.
	Seed int64
	// CaptureEvery synthesises and uploads a packet capture plus SoMeta
	// records for every Nth test (0 disables capture; captures are the
	// heaviest artifact).
	CaptureEvery int
	// TracerouteEvery runs a follow-up paris traceroute per server every
	// N days (0 disables; the paper ran them after each test).
	TracerouteEvery int
	// FixedOrder disables the per-hour test-order randomisation; only the
	// D5 ablation uses this (the paper randomises to decorrelate from
	// periodic system events).
	FixedOrder bool
}

func (c Config) withDefaults() Config {
	if c.TestDurationSec <= 0 {
		c.TestDurationSec = 15
	}
	if c.DownlinkMbps <= 0 {
		c.DownlinkMbps = 1000
	}
	if c.UplinkMbps <= 0 {
		c.UplinkMbps = 100
	}
	if len(c.Tiers) == 0 {
		c.Tiers = []bgp.Tier{bgp.Premium}
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	return c
}

// Orchestrator wires the simulator, the cloud control plane and the data
// pipeline together.
type Orchestrator struct {
	sim      *netsim.Sim
	platform *cloud.Platform
	bucket   *cloud.Bucket
}

// New creates an orchestrator. bucket may be nil to skip artifact uploads.
func New(sim *netsim.Sim, platform *cloud.Platform, bucket *cloud.Bucket) *Orchestrator {
	return &Orchestrator{sim: sim, platform: platform, bucket: bucket}
}

// Report summarises a finished campaign.
type Report struct {
	Region       string
	VMs          int
	Tests        int
	Hours        int
	Traceroutes  int
	Captures     int
	MaxVMCPUUtil float64
}

// Run executes the campaign, streaming measurements into sink.
func (o *Orchestrator) Run(cfg Config, sink Sink) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("orchestrator: no servers to measure")
	}
	if sink == nil {
		sink = &SliceSink{}
	}
	topo := o.sim.Topology()
	if _, ok := topo.Region(cfg.Region); !ok {
		return nil, fmt.Errorf("orchestrator: unknown region %q", cfg.Region)
	}

	// Deploy measurement VMs: enough for one test per server per hour,
	// per tier, spread across zones.
	perTierVMs := PlanVMs(len(cfg.Servers))
	totalVMs := perTierVMs * len(cfg.Tiers)
	var vms []*cloud.VM
	for ti, tier := range cfg.Tiers {
		for i := 0; i < perTierVMs; i++ {
			vm, err := o.platform.CreateVM(cloud.VMSpec{
				Name:         fmt.Sprintf("clasp-%s-%s-%d", cfg.Region, tier, i),
				Region:       cfg.Region,
				Type:         cloud.N1Standard2,
				Tier:         tier,
				DownlinkMbps: cfg.DownlinkMbps,
				UplinkMbps:   cfg.UplinkMbps,
				Labels:       map[string]string{"role": "measurement", "tier": tier.String()},
			}, cfg.Start)
			if err != nil {
				return nil, fmt.Errorf("orchestrator: deploying VM %d/%s: %w", i, tier, err)
			}
			vms = append(vms, vm)
			_ = ti
		}
	}
	defer func() {
		end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
		for _, vm := range vms {
			_ = o.platform.DeleteVM(vm.Name, end)
		}
	}()

	collector := someta.NewCollector(fmt.Sprintf("clasp-%s", cfg.Region), nil)
	prober := traceroute.NewProber(o.sim, cfg.Region, cfg.Seed)

	rep := &Report{Region: cfg.Region, VMs: totalVMs}
	totalHours := cfg.Days * 24
	slotGap := time.Hour / time.Duration(TestsPerVMPerHour+1)
	downloads := 0

	for hour := 0; hour < totalHours; hour++ {
		hourStart := cfg.Start.Add(time.Duration(hour) * time.Hour)
		rep.Hours++
		// Randomise the test order each hour to decorrelate from periodic
		// system events (§3.2).
		var order []int
		if cfg.FixedOrder {
			order = make([]int, len(cfg.Servers))
			for i := range order {
				order[i] = i
			}
		} else {
			order = rand.New(rand.NewSource(cfg.Seed ^ int64(hour)*0x9e37)).Perm(len(cfg.Servers))
		}

		for _, tier := range cfg.Tiers {
			for slot, idx := range order {
				srv := cfg.Servers[idx]
				at := hourStart.Add(time.Duration(slot%TestsPerVMPerHour) * slotGap)
				for _, dir := range []netsim.Direction{netsim.Download, netsim.Upload} {
					res, err := o.sim.Measure(netsim.TestSpec{
						Region:      cfg.Region,
						Server:      srv,
						Tier:        tier,
						Dir:         dir,
						Time:        at,
						DurationSec: cfg.TestDurationSec,
						VMDownMbps:  cfg.DownlinkMbps,
						VMUpMbps:    cfg.UplinkMbps,
					})
					if err != nil {
						return nil, fmt.Errorf("orchestrator: test %d/%s/%s: %w", srv.ID, tier, dir, err)
					}
					sink.Record(analysis.Measurement{
						ServerID: srv.ID,
						Region:   cfg.Region,
						Tier:     tier,
						Dir:      dir,
						Time:     at,
						Mbps:     res.ThroughputMbps,
						RTTms:    res.RTTms,
						Loss:     res.LossRate,
					})
					rep.Tests++
					// Egress accounting: uploads push the full transfer
					// out of the cloud; downloads only return ACKs (~2%).
					bytes := int64(res.ThroughputMbps * 1e6 / 8 * cfg.TestDurationSec)
					if dir == netsim.Upload {
						o.platform.RecordEgress(tier, bytes)
					} else {
						o.platform.RecordEgress(tier, bytes/50)
					}

					if dir == netsim.Download {
						downloads++
						if cfg.CaptureEvery > 0 && downloads%cfg.CaptureEvery == 0 {
							if err := o.captureTest(cfg, srv, tier, at, res, collector); err != nil {
								return nil, err
							}
							rep.Captures++
						}
					}
				}
			}
		}

		// Daily follow-up traceroutes.
		if cfg.TracerouteEvery > 0 && hour%(24*cfg.TracerouteEvery) == 0 {
			for _, srv := range cfg.Servers {
				tr, err := prober.Trace(traceroute.Destination{
					IP: srv.IP, ASN: srv.ASN, City: srv.City, LinkID: -1, Tier: cfg.Tiers[0],
				}, traceroute.Options{Mode: traceroute.Paris, FlowID: uint64(srv.ID)})
				if err != nil {
					return nil, fmt.Errorf("orchestrator: traceroute to %d: %w", srv.ID, err)
				}
				rep.Traceroutes++
				if o.bucket != nil {
					var buf bytes.Buffer
					if err := traceroute.WriteJSON(&buf, []traceroute.Result{tr}); err != nil {
						return nil, err
					}
					key := fmt.Sprintf("%s/traceroute/%s/server-%d.json", cfg.Region, hourStart.Format("2006-01-02"), srv.ID)
					if err := o.bucket.Put(key, buf.Bytes(), hourStart); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	o.platform.AccrueVMHours(totalVMs, time.Duration(totalHours)*time.Hour, cloud.N1Standard2)
	rep.MaxVMCPUUtil = collector.MaxCPU()
	return rep, nil
}

// captureTest synthesises a tcpdump-style header capture consistent with
// the measured flow, snapshots SoMeta metadata, compresses both, and
// uploads them to the results bucket.
func (o *Orchestrator) captureTest(cfg Config, srv *topology.Server, tier bgp.Tier, at time.Time, res netsim.TestResult, collector *someta.Collector) error {
	collector.Snap(at)
	if o.bucket == nil {
		return nil
	}
	var raw bytes.Buffer
	err := flowstats.Synthesize(&raw, flowstats.SynthConfig{
		Client:      o.sim.VMAddr(cfg.Region, 0, 0),
		Server:      srv.IP,
		ClientPort:  uint16(40000 + srv.ID%20000),
		Start:       at,
		RTTms:       res.RTTms,
		Loss:        res.LossRate,
		RateMbps:    res.ThroughputMbps,
		DurationSec: minF(cfg.TestDurationSec, 5), // header capture of the first seconds
		Seed:        cfg.Seed ^ int64(srv.ID),
	})
	if err != nil {
		return fmt.Errorf("orchestrator: synthesising capture: %w", err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	key := fmt.Sprintf("%s/pcap/%s/server-%d-%s.pcap.gz", cfg.Region, at.Format("2006-01-02"), srv.ID, tier)
	if err := o.bucket.Put(key, gz.Bytes(), at); err != nil {
		return err
	}

	var meta bytes.Buffer
	if err := someta.WriteJSON(&meta, collector.Snapshots()[len(collector.Snapshots())-1:]); err != nil {
		return err
	}
	metaKey := fmt.Sprintf("%s/someta/%s/server-%d-%s.json", cfg.Region, at.Format("2006-01-02"), srv.ID, tier)
	return o.bucket.Put(metaKey, meta.Bytes(), at)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
