// Package orchestrator runs CLASP's measurement campaigns (§3.2): it plans
// how many measurement VMs a region needs for one test per server per hour
// (each VM runs one test at a time, at most 17 per hour), deploys them
// across availability zones, executes hourly rounds in randomised order,
// captures packet headers and SoMeta metadata, runs follow-up traceroutes,
// uploads results to the region's storage bucket, and indexes them into the
// time-series store.
//
// # Concurrency model
//
// A campaign fans each hourly round out across its simulated measurement
// VMs: every VM's test list runs on its own goroutine, bounded by
// Config.Parallelism. Measurement results land in a slice indexed by a
// deterministic per-hour task order, and all observable side effects —
// sink records, egress metering, report counters — are applied in that
// order after the round joins. Because netsim.Sim.Measure is a pure
// function of (seed, spec), a campaign produces bit-identical measurement
// sets at every parallelism level, including 1 (sequential).
package orchestrator

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/cloud"
	"github.com/clasp-measurement/clasp/internal/faults"
	"github.com/clasp-measurement/clasp/internal/flowstats"
	"github.com/clasp-measurement/clasp/internal/killpoint"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/someta"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/traceroute"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// TestsPerVMPerHour is the paper's per-VM budget: each throughput test
// takes up to 120 s, plus 20 min of traceroutes and 5 min of uploads per
// hour, leaving at most 17 tests.
const TestsPerVMPerHour = 17

// TestsPerServerPerHour is the hourly test load one server adds to the
// plan: download and upload are separate tests, each occupying its own
// slot in a VM's hourly budget.
const TestsPerServerPerHour = 2

// PlanVMs returns the number of measurement VMs needed to test n servers
// hourly. The plan is on tests per hour, not servers per hour: each server
// consumes TestsPerServerPerHour of the 17 hourly per-VM test slots.
func PlanVMs(n int) int {
	return PlanVMsForTests(n * TestsPerServerPerHour)
}

// PlanVMsForTests returns the number of measurement VMs needed to run the
// given number of tests each hour.
func PlanVMsForTests(tests int) int {
	if tests <= 0 {
		return 0
	}
	return (tests + TestsPerVMPerHour - 1) / TestsPerVMPerHour
}

// TestEgressBytes is the emit phase's egress formula for one completed
// test: uploads push the full transfer out of the cloud, downloads only
// return ACKs (~2%). durSec <= 0 uses the default test duration. Exposed
// so checkpoint replay can re-meter the same transfers a live emit phase
// billed, keeping a resumed `costs` consistent with an uninterrupted run.
func TestEgressBytes(m analysis.Measurement, durSec float64) int64 {
	if durSec <= 0 {
		durSec = 15
	}
	xfer := int64(m.Mbps * 1e6 / 8 * durSec)
	if m.Dir == netsim.Upload {
		return xfer
	}
	return xfer / 50
}

// Sink consumes measurement records as the campaign produces them, so
// full-scale runs need not hold every record in memory.
//
// A single Run delivers records from one goroutine, so any Sink works for
// one campaign. Sinks shared across concurrently running campaigns must be
// safe for concurrent use: StoreSink already is, SliceSink is not — wrap
// it (or any other unsafe sink) in a LockedSink.
type Sink interface {
	Record(analysis.Measurement)
}

// SliceSink collects records into a slice. It is not safe for concurrent
// use; wrap it in a LockedSink when sharing it across campaigns.
type SliceSink struct {
	Out []analysis.Measurement
}

// Record implements Sink.
func (s *SliceSink) Record(m analysis.Measurement) { s.Out = append(s.Out, m) }

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(analysis.Measurement)

// Record implements Sink.
func (f SinkFunc) Record(m analysis.Measurement) { f(m) }

// LockedSink serialises access to an inner sink, making it safe to share
// across concurrently running campaigns.
type LockedSink struct {
	mu    sync.Mutex
	inner Sink
}

// NewLockedSink wraps a sink with a mutex.
func NewLockedSink(inner Sink) *LockedSink { return &LockedSink{inner: inner} }

// Record implements Sink.
func (l *LockedSink) Record(m analysis.Measurement) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Record(m)
}

// StoreSink indexes records into a time-series store. It is safe for
// concurrent use: tsdb.Store shards its lock internally, and the sink
// interns one series handle per (server, region, tier, dir) so repeated
// records skip tag construction and canonical-key rendering.
type StoreSink struct {
	Store *tsdb.Store

	handles sync.Map // storeSinkKey -> *tsdb.Handle
}

// storeSinkKey identifies one record stream's series.
type storeSinkKey struct {
	server int
	region string
	tier   bgp.Tier
	dir    netsim.Direction
}

// Record implements Sink.
func (s *StoreSink) Record(m analysis.Measurement) {
	key := storeSinkKey{server: m.ServerID, region: m.Region, tier: m.Tier, dir: m.Dir}
	var h *tsdb.Handle
	if v, ok := s.handles.Load(key); ok {
		h = v.(*tsdb.Handle)
	} else {
		// Handle errors are impossible for the generated tag values.
		h, _ = s.Store.Handle("speedtest", tsdb.Tags{
			"server": strconv.Itoa(m.ServerID),
			"region": m.Region,
			"tier":   m.Tier.String(),
			"dir":    m.Dir.String(),
		})
		if v, loaded := s.handles.LoadOrStore(key, h); loaded {
			h = v.(*tsdb.Handle)
		}
	}
	_ = h.Insert(m.Time, map[string]float64{
		"mbps":   m.Mbps,
		"rtt_ms": m.RTTms,
		"loss":   m.Loss,
	})
}

// LogSink appends records into a columnar RecordLog — the streaming
// campaign path, where records are compressed block-at-a-time as they
// arrive instead of accumulating as an 88-byte-struct slice. Like
// SliceSink it is not safe for concurrent use; wrap it in a LockedSink
// when sharing it across campaigns.
type LogSink struct {
	Log *analysis.RecordLog
}

// Record implements Sink.
func (s *LogSink) Record(m analysis.Measurement) { s.Log.Append(m) }

// MultiSink fans records out to several sinks. It holds no state of its
// own, so it is as safe for concurrent use as its least safe component.
type MultiSink []Sink

// Record implements Sink.
func (ms MultiSink) Record(m analysis.Measurement) {
	for _, s := range ms {
		s.Record(m)
	}
}

// Config describes one campaign in one region.
type Config struct {
	Region  string
	Servers []*topology.Server
	// Tiers to measure each server over. Topology-based campaigns use
	// {Premium}; differential campaigns use {Premium, Standard} with a
	// dedicated VM pair per tier.
	Tiers []bgp.Tier
	// Start and Days bound the campaign in virtual time.
	Start time.Time
	Days  int
	// TestDurationSec is the per-test transfer duration (default 15).
	TestDurationSec float64
	// DownlinkMbps/UplinkMbps are the tc caps (defaults 1000/100, §3.2).
	DownlinkMbps float64
	UplinkMbps   float64
	// Seed drives the per-hour randomised test order.
	Seed int64
	// CaptureEvery synthesises and uploads a packet capture plus SoMeta
	// records for every Nth test (0 disables capture; captures are the
	// heaviest artifact).
	CaptureEvery int
	// TracerouteEvery runs a follow-up paris traceroute per server every
	// N days (0 disables; the paper ran them after each test).
	TracerouteEvery int
	// FixedOrder disables the per-hour test-order randomisation; only the
	// D5 ablation uses this (the paper randomises to decorrelate from
	// periodic system events).
	FixedOrder bool
	// Parallelism bounds how many simulated measurement VMs execute their
	// hourly test lists concurrently. 0 or 1 runs sequentially. The
	// measurement set is bit-identical at every setting.
	Parallelism int
	// Measure overrides how a scheduled test executes (default: the
	// simulator's Measure). Drivers use it to route tests through a real
	// protocol client, where each test occupies its VM for real
	// wall-clock time — the case the worker pool exists for. It is called
	// from concurrent VM goroutines when Parallelism > 1, so it must be
	// safe for concurrent use, and it must stay deterministic in the spec
	// for the bit-identical guarantee to hold.
	Measure func(netsim.TestSpec) (netsim.TestResult, error)
	// Faults selects the fault-injection profile and the resilience policy
	// the campaign runs under (internal/faults). The zero profile — or the
	// canned "none" — injects nothing and leaves execution bit-identical
	// to a fault-free engine, pinned by TestFaultProfileNoneBitIdentical.
	// Active profiles keep campaigns deterministic per Seed at any
	// Parallelism: every injection decision, retry delay and breaker
	// transition is a pure function of the seed and task coordinates.
	Faults faults.Profile
	// CheckpointEvery calls OnCheckpoint after every Nth completed round
	// (hour). 0 disables the round cadence.
	CheckpointEvery int
	// CheckpointVMHours calls OnCheckpoint once at least N VM-hours have
	// accrued since the last checkpoint (each round adds one VM-hour per
	// deployed VM). 0 disables the vm-hour cadence. Either cadence firing
	// emits a checkpoint and resets both accumulators.
	CheckpointVMHours int
	// OnCheckpoint receives a Progress snapshot at each checkpoint
	// boundary. A returned error aborts the campaign — by then the
	// snapshot's records are already durable, so callers use a sentinel
	// error to stop a campaign with a valid checkpoint on disk (the
	// in-process resume tests do exactly that). nil disables checkpointing.
	OnCheckpoint func(Progress) error
	// Resume continues a campaign from a checkpointed Progress instead of
	// from hour zero. The caller must replay the checkpoint's records into
	// its sink first: Run only re-executes rounds from Progress.NextHour
	// on, emitting into the same sink. Every other Config field must match
	// the original run for the byte-identical guarantee to hold.
	Resume *Progress
	// Workers, when set, is a command-wide VM-worker budget shared with the
	// other campaigns of a multi-campaign command: every VM round and
	// traceroute batch entry holds a pool slot while it runs, so concurrent
	// campaigns together never exceed the pool's capacity even though each
	// still spawns up to Parallelism goroutines. nil keeps the historical
	// per-campaign budget. Purely a scheduling constraint — the measurement
	// set stays bit-identical with or without it.
	Workers *WorkerPool
	// OnRound is called after each completed round (hour) with the
	// campaign's completed-hour watermark and total hours, from the
	// campaign's own goroutine. Multi-campaign schedulers use it to
	// aggregate whole-command progress; nil disables it.
	OnRound func(done, total int)
}

// Progress is the serializable cross-round state of a running campaign —
// everything mutable that survives from one hourly round to the next.
// Together with the campaign Config (seed included) it determines the rest
// of the run exactly: per-hour test orders, fault decisions and measurement
// results are pure functions of (seed, coordinates), so a campaign resumed
// from a Progress re-executes the remaining rounds bit-identically at any
// Parallelism. Everything else the engine touches is either pure
// (per-hour RNG, routing caches) or rebuilt on resume (VM pool, workers).
type Progress struct {
	// NextHour is the completed-hour watermark: rounds [0, NextHour) are
	// fully emitted and durable; the resumed run starts at NextHour.
	NextHour int `json:"nextHour"`
	// Downloads is the cumulative download-test counter that drives the
	// CaptureEvery cadence across hours.
	Downloads int `json:"downloads"`
	// Report is the report accumulated over the completed rounds,
	// including the original deploy's retry accounting (a resumed run
	// discards its own redeploy counters in favour of this).
	Report Report `json:"report"`
	// Breaker is the circuit breaker's dynamic state (zero when the
	// profile has no breaker).
	Breaker faults.BreakerSnapshot `json:"breaker"`
	// VMCreateAttempts is the platform's per-name creation-attempt residue
	// from failed re-creations; FailVMCreate keys on (name, attempt), so
	// future re-creation decisions depend on it.
	VMCreateAttempts map[string]int `json:"vmCreateAttempts,omitempty"`
	// DeadVMs are VM slots left empty by a failed re-creation; their tests
	// keep dropping until a later hour re-creates them.
	DeadVMs []int `json:"deadVms,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.TestDurationSec <= 0 {
		c.TestDurationSec = 15
	}
	if c.DownlinkMbps <= 0 {
		c.DownlinkMbps = 1000
	}
	if c.UplinkMbps <= 0 {
		c.UplinkMbps = 100
	}
	if len(c.Tiers) == 0 {
		c.Tiers = []bgp.Tier{bgp.Premium}
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	return c
}

// hourSeed derives the per-hour permutation seed from the campaign seed
// with a splitmix64-style finaliser. The multiplicative avalanche
// decorrelates adjacent hours even for small campaign seeds, where the
// previous xor-with-scaled-hour mixing produced overlapping orders.
func hourSeed(seed int64, hour int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(hour)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// HourOrder returns the randomised server visit order for one campaign
// hour. Exported so tests can pin the deterministic schedule.
func HourOrder(seed int64, hour, n int) []int {
	return rand.New(rand.NewSource(hourSeed(seed, hour))).Perm(n)
}

// Orchestrator wires the simulator, the cloud control plane and the data
// pipeline together.
type Orchestrator struct {
	sim      *netsim.Sim
	platform *cloud.Platform
	bucket   *cloud.Bucket
}

// New creates an orchestrator. bucket may be nil to skip artifact uploads.
func New(sim *netsim.Sim, platform *cloud.Platform, bucket *cloud.Bucket) *Orchestrator {
	return &Orchestrator{sim: sim, platform: platform, bucket: bucket}
}

// Report summarises a finished campaign.
type Report struct {
	Region       string
	VMs          int
	Tests        int
	Hours        int
	Traceroutes  int
	Captures     int
	MaxVMCPUUtil float64

	// Resilience accounting, all zero in fault-free campaigns. Every
	// scheduled test either completes (Tests) or is Dropped — after
	// exhausting its retry budget, hitting a server-unavailability window,
	// losing its VM for the hour, or being shed by an open breaker.
	// Failed counts failed executions (a test that fails twice counts
	// twice) and Retried the re-executions, so Failed >= Dropped.
	Failed            int
	Retried           int
	Dropped           int
	Preemptions       int
	VMCreateRetries   int
	BreakerOpenRounds int
}

// vmWorker is the execution state of one simulated measurement VM: its own
// SoMeta collector and traceroute prober, so concurrently running VMs never
// share a mutable instrument.
type vmWorker struct {
	collector *someta.Collector
	prober    *traceroute.Prober
}

// task is one scheduled speed test of an hourly round.
type task struct {
	srv     *topology.Server
	tier    bgp.Tier
	dir     netsim.Direction
	at      time.Time
	vm      int // global VM index: tierIndex*perTierVMs + vmWithinTier
	capture bool
}

// Run executes the campaign, streaming measurements into sink.
func (o *Orchestrator) Run(cfg Config, sink Sink) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("orchestrator: no servers to measure")
	}
	if sink == nil {
		sink = &SliceSink{}
	}
	topo := o.sim.Topology()
	if _, ok := topo.Region(cfg.Region); !ok {
		return nil, fmt.Errorf("orchestrator: unknown region %q", cfg.Region)
	}

	// Campaign progress metrics and the root of the span hierarchy
	// (campaign → phase/round → vm-hour → test). Both no-op entirely when
	// the obs registry/tracer are disabled, and nothing they record feeds
	// back into the measurement arithmetic — TestMetricsDoNotChangeResults
	// pins that campaigns are bit-identical either way.
	metrics := newCampaignMetrics(cfg.Region)
	campSpan := obs.Trace("campaign").With("region", cfg.Region).WithInt("days", cfg.Days)
	defer campSpan.End()

	// Fault machinery. A nil injector — the common case — short-circuits
	// every fault branch below, keeping the fault-free path identical to an
	// engine without this layer. The platform injector is (re)installed
	// unconditionally so a previous campaign's cannot leak into this run.
	inj := faults.NewInjector(cfg.Faults, cfg.Seed)
	var pol faults.Profile
	var breaker *faults.Breaker
	if inj != nil {
		pol = inj.Profile()
		breaker = faults.NewBreaker(pol.BreakerFailFrac, pol.BreakerMinSamples, pol.BreakerCooldown)
		o.platform.SetVMFaults(inj)
	} else {
		o.platform.SetVMFaults(nil)
	}

	// Precompute the routing trees every measurement will need — the tree
	// toward the cloud (download ingress) and toward each server AS
	// (upload egress) — so the first hourly round starts with caches hot.
	// Warming is a pure cache fill: results are identical without it.
	warmDsts := []bgp.ASN{topo.Cloud.ASN}
	seen := map[bgp.ASN]bool{topo.Cloud.ASN: true}
	for _, srv := range cfg.Servers {
		if !seen[srv.ASN] {
			seen[srv.ASN] = true
			warmDsts = append(warmDsts, srv.ASN)
		}
	}
	phaseStart := time.Now()
	warmSpan := campSpan.Child("warm").WithInt("destinations", len(warmDsts))
	o.sim.Router().Warm(warmDsts, cfg.Parallelism)
	warmSpan.End()
	metrics.phaseDone("warm", phaseStart)

	// Deploy measurement VMs: enough for the hourly test load (two tests
	// per server), per tier, spread across zones.
	phaseStart = time.Now()
	deploySpan := campSpan.Child("deploy")
	perTierVMs := PlanVMs(len(cfg.Servers))
	totalVMs := perTierVMs * len(cfg.Tiers)
	rep := &Report{Region: cfg.Region, VMs: totalVMs}
	vms := make([]*cloud.VM, 0, totalVMs)
	specs := make([]cloud.VMSpec, 0, totalVMs)
	for _, tier := range cfg.Tiers {
		for i := 0; i < perTierVMs; i++ {
			vm, retries, err := o.createVM(inj, pol, cloud.VMSpec{
				Name:         fmt.Sprintf("clasp-%s-%s-%d", cfg.Region, tier, i),
				Region:       cfg.Region,
				Type:         cloud.N1Standard2,
				Tier:         tier,
				DownlinkMbps: cfg.DownlinkMbps,
				UplinkMbps:   cfg.UplinkMbps,
				Labels:       map[string]string{"role": "measurement", "tier": tier.String()},
			}, cfg.Start)
			rep.VMCreateRetries += retries
			metrics.addVMCreateRetries(retries)
			if err != nil {
				return nil, fmt.Errorf("orchestrator: deploying VM %d/%s: %w", i, tier, err)
			}
			vms = append(vms, vm)
			// The provisioned spec has its zone resolved, so a preempted VM
			// is re-created in the same zone without consuming another
			// round-robin slot — keeping zone assignment deterministic.
			specs = append(specs, vm.VMSpec)
		}
	}
	defer func() {
		end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
		for i := range vms {
			// A slot is nil while its VM is preempted and not yet replaced.
			if vms[i] != nil {
				_ = o.platform.DeleteVM(vms[i].Name, end)
			}
		}
	}()

	workers := make([]*vmWorker, totalVMs)
	for i := range workers {
		workers[i] = &vmWorker{
			collector: someta.NewCollector(fmt.Sprintf("clasp-%s-%d", cfg.Region, i), nil),
			prober:    traceroute.NewProber(o.sim, cfg.Region, cfg.Seed),
		}
	}
	deploySpan.WithInt("vms", totalVMs).End()
	metrics.phaseDone("deploy", phaseStart)

	totalHours := cfg.Days * 24
	slotGap := time.Hour / time.Duration(TestsPerVMPerHour+1)
	downloads := 0

	// Resume: swap in the checkpointed cross-round state. The redeploy
	// above re-ran the original deploy bit-identically (fresh platform,
	// pure FailVMCreate decisions), so its retry counters duplicate what
	// the checkpointed report already carries — the report is restored
	// wholesale, not merged. VM slots that were dead at the checkpoint are
	// re-emptied so their rounds keep dropping tests until the hour that
	// deterministically re-creates them.
	startHour := 0
	if cfg.Resume != nil {
		res := cfg.Resume
		if res.NextHour < 0 || res.NextHour > totalHours {
			return nil, fmt.Errorf("orchestrator: resume watermark %d outside campaign of %d hours", res.NextHour, totalHours)
		}
		restored := res.Report
		rep = &restored
		downloads = res.Downloads
		breaker.Restore(res.Breaker)
		o.platform.RestoreCreateAttempts(res.VMCreateAttempts)
		resumeAt := cfg.Start.Add(time.Duration(res.NextHour) * time.Hour)
		for _, i := range res.DeadVMs {
			if i < 0 || i >= len(vms) || vms[i] == nil {
				continue
			}
			if err := o.platform.DeleteVM(vms[i].Name, resumeAt); err != nil {
				return nil, fmt.Errorf("orchestrator: resuming dead VM slot %d: %w", i, err)
			}
			vms[i] = nil
		}
		startHour = res.NextHour
	}

	// Checkpoint cadence: both accumulators advance per completed round
	// (shed rounds included — an open breaker is exactly the cross-round
	// state a crash must not lose) and reset together when either fires.
	roundsSince, vmHoursSince := 0, 0
	checkpointAfter := func(hour int) error {
		if cfg.OnCheckpoint == nil {
			return nil
		}
		roundsSince++
		vmHoursSince += totalVMs
		if !(cfg.CheckpointEvery > 0 && roundsSince >= cfg.CheckpointEvery) &&
			!(cfg.CheckpointVMHours > 0 && vmHoursSince >= cfg.CheckpointVMHours) {
			return nil
		}
		roundsSince, vmHoursSince = 0, 0
		var dead []int
		for i := range vms {
			if vms[i] == nil {
				dead = append(dead, i)
			}
		}
		p := Progress{
			NextHour:         hour + 1,
			Downloads:        downloads,
			Report:           *rep,
			Breaker:          breaker.Snapshot(),
			VMCreateAttempts: o.platform.CreateAttempts(),
			DeadVMs:          dead,
		}
		if err := cfg.OnCheckpoint(p); err != nil {
			return fmt.Errorf("orchestrator: checkpoint after hour %d: %w", hour, err)
		}
		killpoint.Maybe("round-boundary", hour)
		return nil
	}

	// Progress/ETA gauges for live introspection (-debug-addr). Driven by
	// the wall clock only; see setProgress for the no-feedback invariant.
	wallStart := time.Now()
	metrics.setProgress(startHour, totalHours, wallStart)

	for hour := startHour; hour < totalHours; hour++ {
		hourStart := cfg.Start.Add(time.Duration(hour) * time.Hour)
		rep.Hours++
		// Randomise the test order each hour to decorrelate from periodic
		// system events (§3.2).
		var order []int
		if cfg.FixedOrder {
			order = make([]int, len(cfg.Servers))
			for i := range order {
				order[i] = i
			}
		} else {
			order = HourOrder(cfg.Seed, hour, len(cfg.Servers))
		}

		// Build the hour's task list. Everything observable is derived
		// from this deterministic order: VM assignment, slot timestamps
		// (upload gets its own slot after the download), and the capture
		// cadence, which counts downloads in task order so it selects the
		// same tests at any parallelism.
		tasks := make([]task, 0, len(order)*TestsPerServerPerHour*len(cfg.Tiers))
		for ti, tier := range cfg.Tiers {
			for pos, idx := range order {
				srv := cfg.Servers[idx]
				for di, dir := range []netsim.Direction{netsim.Download, netsim.Upload} {
					testIdx := pos*TestsPerServerPerHour + di
					capture := false
					if dir == netsim.Download {
						downloads++
						capture = cfg.CaptureEvery > 0 && downloads%cfg.CaptureEvery == 0
					}
					tasks = append(tasks, task{
						srv:     srv,
						tier:    tier,
						dir:     dir,
						at:      hourStart.Add(time.Duration(testIdx%TestsPerVMPerHour) * slotGap),
						vm:      ti*perTierVMs + testIdx/TestsPerVMPerHour,
						capture: capture,
					})
				}
			}
		}

		metrics.addScheduled(len(tasks))
		if breaker != nil && !breaker.Allow() {
			// Open breaker: shed the whole round with explicit accounting
			// instead of executing it. Observing the shed round with zero
			// executed tasks advances the cooldown toward the probe round.
			rep.Dropped += len(tasks)
			rep.BreakerOpenRounds++
			metrics.addDropped(len(tasks))
			metrics.incBreakerOpenRounds()
			breaker.ObserveRound(len(tasks), 0)
			metrics.setBreakerState(breaker.State())
			if err := checkpointAfter(hour); err != nil {
				return nil, err
			}
			metrics.setProgress(hour+1, totalHours, wallStart)
			if cfg.OnRound != nil {
				cfg.OnRound(hour+1, totalHours)
			}
			continue
		}
		phaseStart = time.Now()
		roundSpan := campSpan.Child("round").WithInt("hour", hour).WithInt("tasks", len(tasks))
		results, completed, tally, err := o.runRound(cfg, hourStart, hour, tasks, workers, vms, specs, inj, pol, roundSpan, metrics)
		roundSpan.End()
		metrics.phaseDone("measure", phaseStart)
		if err != nil {
			return nil, err
		}
		// Crash-test point: the round has executed but nothing is emitted
		// or checkpointed yet — a kill here loses the whole round, which
		// resume must re-execute from the last checkpoint's watermark.
		killpoint.Maybe("mid-round", hour)
		rep.Failed += tally.failed
		rep.Retried += tally.retried
		rep.Dropped += tally.dropped
		rep.Preemptions += tally.preemptions
		rep.VMCreateRetries += tally.vmCreateRetries
		metrics.addFaultTally(tally)
		if breaker != nil {
			// Round-boundary breaker feed: order-independent counts only,
			// so the trip point is deterministic at any parallelism.
			breaker.ObserveRound(tally.dropped, len(tasks))
			metrics.setBreakerState(breaker.State())
		}

		// Emit phase: sink records, egress metering and report counters
		// run in task order, so the record stream and the accrued
		// floating-point sums match the sequential schedule exactly.
		// Dropped tests never reach the sink — the paper discards failed
		// tests rather than recording partial measurements.
		phaseStart = time.Now()
		for i, t := range tasks {
			if !completed[i] {
				continue
			}
			res := results[i]
			sink.Record(analysis.Measurement{
				ServerID: t.srv.ID,
				Region:   cfg.Region,
				Tier:     t.tier,
				Dir:      t.dir,
				Time:     t.at,
				Mbps:     res.ThroughputMbps,
				RTTms:    res.RTTms,
				Loss:     res.LossRate,
			})
			rep.Tests++
			metrics.incCompleted()
			o.platform.RecordEgress(t.tier, TestEgressBytes(analysis.Measurement{
				Dir: t.dir, Mbps: res.ThroughputMbps,
			}, cfg.TestDurationSec))
			if t.capture {
				rep.Captures++
				metrics.incCaptures()
			}
		}
		metrics.phaseDone("emit", phaseStart)

		// Daily follow-up traceroutes: probing is pure, so it fans out
		// across the VM pool; uploads run in server order afterwards.
		if cfg.TracerouteEvery > 0 && hour%(24*cfg.TracerouteEvery) == 0 {
			phaseStart = time.Now()
			trSpan := campSpan.Child("traceroute").WithInt("hour", hour).WithInt("servers", len(cfg.Servers))
			trs := make([]traceroute.Result, len(cfg.Servers))
			err := forEachLimit(len(cfg.Servers), cfg.Parallelism, cfg.Workers.Wrap(func(i int) error {
				srv := cfg.Servers[i]
				w := workers[i%len(workers)]
				tr, err := w.prober.Trace(traceroute.Destination{
					IP: srv.IP, ASN: srv.ASN, City: srv.City, LinkID: -1, Tier: cfg.Tiers[0],
				}, traceroute.Options{Mode: traceroute.Paris, FlowID: uint64(srv.ID)})
				if err != nil {
					return fmt.Errorf("orchestrator: traceroute to %d: %w", srv.ID, err)
				}
				trs[i] = tr
				return nil
			}))
			if err != nil {
				return nil, err
			}
			for i, srv := range cfg.Servers {
				rep.Traceroutes++
				metrics.incTraceroutes()
				if o.bucket == nil {
					continue
				}
				var buf bytes.Buffer
				if err := traceroute.WriteJSON(&buf, []traceroute.Result{trs[i]}); err != nil {
					return nil, err
				}
				key := fmt.Sprintf("%s/traceroute/%s/server-%d.json", cfg.Region, hourStart.Format("2006-01-02"), srv.ID)
				if err := o.bucket.Put(key, buf.Bytes(), hourStart); err != nil {
					return nil, err
				}
			}
			trSpan.End()
			metrics.phaseDone("traceroute", phaseStart)
		}
		if err := checkpointAfter(hour); err != nil {
			return nil, err
		}
		metrics.setProgress(hour+1, totalHours, wallStart)
		if cfg.OnRound != nil {
			cfg.OnRound(hour+1, totalHours)
		}
	}
	o.platform.AccrueVMHours(totalVMs, time.Duration(totalHours)*time.Hour, cloud.N1Standard2)
	for _, w := range workers {
		if u := w.collector.MaxCPU(); u > rep.MaxVMCPUUtil {
			rep.MaxVMCPUUtil = u
		}
	}
	return rep, nil
}

// roundTally aggregates one round's resilience events. Each VM goroutine
// fills its own slot and the totals are summed after the round joins, so
// the counts are deterministic at any parallelism.
type roundTally struct {
	failed          int
	retried         int
	dropped         int
	preemptions     int
	vmCreateRetries int
}

func (t *roundTally) add(o roundTally) {
	t.failed += o.failed
	t.retried += o.retried
	t.dropped += o.dropped
	t.preemptions += o.preemptions
	t.vmCreateRetries += o.vmCreateRetries
}

// createVM provisions one VM, retrying injected control-plane rejections on
// the profile's deterministic backoff schedule. It returns how many retries
// it spent; real errors — and injected ones past the retry budget — surface
// to the caller.
func (o *Orchestrator) createVM(inj *faults.Injector, pol faults.Profile, spec cloud.VMSpec, at time.Time) (*cloud.VM, int, error) {
	retries := 0
	for attempt := 0; ; attempt++ {
		vm, err := o.platform.CreateVM(spec, at)
		if err == nil {
			return vm, retries, nil
		}
		fe, injected := faults.AsError(err)
		if inj == nil || !injected || !fe.Retryable() || attempt >= pol.MaxRetries {
			return nil, retries, err
		}
		retries++
		time.Sleep(inj.Backoff(attempt, faults.KeyString(spec.Name)))
	}
}

// runRound executes one hour's tasks, one goroutine per VM bounded by
// cfg.Parallelism. Results are indexed by task position, so callers observe
// them in the deterministic schedule order regardless of how the round
// interleaved; completed marks the positions that produced a result (always
// all of them in fault-free campaigns).
func (o *Orchestrator) runRound(cfg Config, hourStart time.Time, hour int, tasks []task, workers []*vmWorker, vms []*cloud.VM, specs []cloud.VMSpec, inj *faults.Injector, pol faults.Profile, round obs.Span, metrics *campaignMetrics) ([]netsim.TestResult, []bool, roundTally, error) {
	results := make([]netsim.TestResult, len(tasks))
	completed := make([]bool, len(tasks))
	byVM := make([][]int, len(workers))
	for i, t := range tasks {
		byVM[t.vm] = append(byVM[t.vm], i)
	}
	measure := cfg.Measure
	if measure == nil {
		measure = o.sim.Measure
	}
	traced := obs.TraceEnabled()
	tallies := make([]roundTally, len(workers))

	// execute is the faulted execution path: injection (bounded by ctx),
	// then the measurement. The default simulator route goes through
	// MeasureCtx so the netsim fault counters see every injection; a
	// Measure override keeps its plain signature and gets the injection
	// applied here.
	var execute func(ctx context.Context, spec netsim.TestSpec) (netsim.TestResult, error)
	if inj != nil {
		if cfg.Measure != nil {
			execute = func(ctx context.Context, spec netsim.TestSpec) (netsim.TestResult, error) {
				if err := inj.BeforeMeasure(ctx, spec); err != nil {
					return netsim.TestResult{}, err
				}
				return cfg.Measure(spec)
			}
		} else {
			execute = func(ctx context.Context, spec netsim.TestSpec) (netsim.TestResult, error) {
				return o.sim.MeasureCtx(ctx, spec, inj)
			}
		}
	}

	// runTest executes one task under the profile's timeout/retry/backoff
	// policy. Injected failures are tallied and — once non-retryable or out
	// of budget — dropped, leaving completed[ti] false; real errors still
	// abort the campaign exactly as they did before the fault layer.
	runTest := func(t task, ti int, tally *roundTally) error {
		spec := netsim.TestSpec{
			Region:      cfg.Region,
			Server:      t.srv,
			Tier:        t.tier,
			Dir:         t.dir,
			Time:        t.at,
			DurationSec: cfg.TestDurationSec,
			VMDownMbps:  cfg.DownlinkMbps,
			VMUpMbps:    cfg.UplinkMbps,
		}
		if inj == nil {
			res, err := measure(spec)
			if err != nil {
				return fmt.Errorf("orchestrator: test %d/%s/%s: %w", t.srv.ID, t.tier, t.dir, err)
			}
			results[ti], completed[ti] = res, true
			return nil
		}
		for attempt := 0; ; attempt++ {
			spec.Attempt = attempt
			ctx, cancel := context.WithTimeout(context.Background(), pol.TestTimeout)
			res, err := execute(ctx, spec)
			cancel()
			if err == nil {
				results[ti], completed[ti] = res, true
				return nil
			}
			fe, injected := faults.AsError(err)
			if !injected {
				return fmt.Errorf("orchestrator: test %d/%s/%s: %w", t.srv.ID, t.tier, t.dir, err)
			}
			tally.failed++
			if !fe.Retryable() || attempt >= pol.MaxRetries {
				tally.dropped++
				return nil
			}
			tally.retried++
			time.Sleep(inj.Backoff(attempt,
				faults.KeyString(cfg.Region), uint64(t.srv.ID),
				uint64(t.tier), uint64(t.dir), uint64(hour)))
		}
	}

	runVM := func(vm int) error {
		if len(byVM[vm]) == 0 {
			return nil
		}
		tally := &tallies[vm]
		if inj != nil {
			// Survive this hour's preemption, then make sure the VM slot is
			// populated — a re-creation that failed in an earlier hour left
			// it nil. A VM-hour with no instance is degraded, not fatal:
			// its tests are dropped and the campaign continues (the paper
			// re-plans lost VM-hours rather than aborting, §3.2).
			if vms[vm] != nil && inj.PreemptVM(specs[vm].Name, hour) {
				if err := o.platform.Preempt(specs[vm].Name, hourStart); err != nil {
					return fmt.Errorf("orchestrator: preempting VM %q: %w", specs[vm].Name, err)
				}
				vms[vm] = nil
				tally.preemptions++
			}
			if vms[vm] == nil {
				nvm, retries, err := o.createVM(inj, pol, specs[vm], hourStart)
				tally.vmCreateRetries += retries
				if err != nil {
					tally.dropped += len(byVM[vm])
					return nil
				}
				vms[vm] = nvm
			}
		}
		w := workers[vm]
		vmSpan := round.Child("vm-hour").WithInt("vm", vm).WithInt("tests", len(byVM[vm]))
		defer vmSpan.End()
		// One unconditional SoMeta snapshot per VM-hour, so the report's
		// MaxVMCPUUtil is populated even with captures disabled.
		w.collector.Snap(hourStart)
		metrics.incSnapshots()
		for _, ti := range byVM[vm] {
			t := tasks[ti]
			var testSpan obs.Span
			if traced {
				testSpan = vmSpan.Child("test").WithInt("server", t.srv.ID).
					With("tier", t.tier.String()).With("dir", t.dir.String())
			}
			err := runTest(t, ti, tally)
			testSpan.End()
			if err != nil {
				return err
			}
			if completed[ti] && t.capture {
				if err := o.captureTest(cfg, t.srv, t.tier, t.at, results[ti], w.collector, metrics); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if err := forEachLimit(len(workers), cfg.Parallelism, cfg.Workers.Wrap(runVM)); err != nil {
		return nil, nil, roundTally{}, err
	}
	var total roundTally
	for i := range tallies {
		total.add(tallies[i])
	}
	return results, completed, total, nil
}

// forEachLimit runs fn(0..n-1), at most `limit` calls in flight; limit <= 1
// runs inline. The first error wins; remaining started calls still finish.
func forEachLimit(n, limit int, fn func(i int) error) error {
	if limit <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// latestSnapshot returns a one-element slice holding the newest snapshot,
// or nil when none have been recorded. Guards the capture path against the
// empty-collector case: slicing Snapshots()[len-1:] directly panics with
// index out of range when a collector has never snapped (e.g. after a
// Reset, or a probe wired in without the per-VM-hour Snap).
func latestSnapshot(snaps []someta.Snapshot) []someta.Snapshot {
	if len(snaps) == 0 {
		return nil
	}
	return snaps[len(snaps)-1:]
}

// captureTest synthesises a tcpdump-style header capture consistent with
// the measured flow, snapshots SoMeta metadata, compresses both, and
// uploads them to the results bucket.
func (o *Orchestrator) captureTest(cfg Config, srv *topology.Server, tier bgp.Tier, at time.Time, res netsim.TestResult, collector *someta.Collector, metrics *campaignMetrics) error {
	collector.Snap(at)
	metrics.incSnapshots()
	if o.bucket == nil {
		return nil
	}
	var raw bytes.Buffer
	err := flowstats.Synthesize(&raw, flowstats.SynthConfig{
		Client:      o.sim.VMAddr(cfg.Region, 0, 0),
		Server:      srv.IP,
		ClientPort:  uint16(40000 + srv.ID%20000),
		Start:       at,
		RTTms:       res.RTTms,
		Loss:        res.LossRate,
		RateMbps:    res.ThroughputMbps,
		DurationSec: minF(cfg.TestDurationSec, 5), // header capture of the first seconds
		Seed:        cfg.Seed ^ int64(srv.ID),
	})
	if err != nil {
		return fmt.Errorf("orchestrator: synthesising capture: %w", err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	key := fmt.Sprintf("%s/pcap/%s/server-%d-%s.pcap.gz", cfg.Region, at.Format("2006-01-02"), srv.ID, tier)
	if err := o.bucket.Put(key, gz.Bytes(), at); err != nil {
		return err
	}

	snaps := latestSnapshot(collector.Snapshots())
	if len(snaps) == 0 {
		// Nothing to upload; the pcap alone is still a valid artifact.
		return nil
	}
	var meta bytes.Buffer
	if err := someta.WriteJSON(&meta, snaps); err != nil {
		return err
	}
	metaKey := fmt.Sprintf("%s/someta/%s/server-%d-%s.json", cfg.Region, at.Format("2006-01-02"), srv.ID, tier)
	return o.bucket.Put(metaKey, meta.Bytes(), at)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
