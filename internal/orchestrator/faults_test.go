package orchestrator

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/faults"
	"github.com/clasp-measurement/clasp/internal/obs"
)

// runFaultCampaign runs one small campaign on a fresh substrate and returns
// the JSON-encoded measurement stream plus the report.
func runFaultCampaign(t *testing.T, profile string, seed int64, parallelism int) ([]byte, *Report) {
	t.Helper()
	f := setup(t)
	prof, err := faults.Named(profile)
	if err != nil {
		t.Fatal(err)
	}
	sink := &SliceSink{}
	rep, err := f.orch.Run(Config{
		Region:  "us-east1",
		Servers: f.topo.ServersInCountry("US")[:6],
		Days:    1,
		Seed:    seed,
		// Packet capture dominates campaign wall-clock (~160ms per
		// capture); a sparse stride still pins capture ordering and the
		// capture-vs-fault interaction without slowing the -race run.
		CaptureEvery: 48,
		Parallelism:  parallelism,
		Faults:       prof,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(sink.Out)
	if err != nil {
		t.Fatal(err)
	}
	// MaxVMCPUUtil is a goroutine-pressure proxy sampled from the host
	// runtime (see someta.Collector) — real telemetry, not part of the
	// deterministic measurement set. Normalise it so report comparisons
	// pin exactly the fields the determinism guarantee covers.
	rep.MaxVMCPUUtil = 0
	return enc, rep
}

// TestFaultProfileNoneBitIdentical pins the layer's headline guarantee: a
// campaign under the "none" profile (and under a zero Profile, the default
// for configs that never mention faults) is bit-identical to one that never
// touches the fault machinery, and reports zero resilience events.
func TestFaultProfileNoneBitIdentical(t *testing.T) {
	zero, repZero := runFaultCampaign(t, "", 99, 2)
	none, repNone := runFaultCampaign(t, "none", 99, 2)

	if !bytes.Equal(zero, none) {
		t.Error("measurement stream differs between zero profile and named none profile")
	}
	if !reflect.DeepEqual(repZero, repNone) {
		t.Errorf("reports differ: %+v vs %+v", repZero, repNone)
	}
	if repZero.Failed != 0 || repZero.Retried != 0 || repZero.Dropped != 0 ||
		repZero.Preemptions != 0 || repZero.VMCreateRetries != 0 || repZero.BreakerOpenRounds != 0 {
		t.Errorf("fault-free campaign reported resilience events: %+v", repZero)
	}
	// Every scheduled test completed: 6 servers x 2 directions x 24 hours.
	if want := 6 * 2 * 24; repZero.Tests != want {
		t.Errorf("Tests = %d, want %d", repZero.Tests, want)
	}
}

// TestFlakyVMCampaignDeterministic pins seed determinism under an active
// profile: two runs with the same seed fail in the same places and produce
// identical measurement streams and resilience accounting.
func TestFlakyVMCampaignDeterministic(t *testing.T) {
	a, repA := runFaultCampaign(t, "flaky-vm", 99, 2)
	b, repB := runFaultCampaign(t, "flaky-vm", 99, 2)

	if !bytes.Equal(a, b) {
		t.Error("same-seed flaky-vm runs produced different measurement streams")
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Errorf("same-seed flaky-vm reports differ:\n%+v\n%+v", repA, repB)
	}
	if repA.Failed+repA.Dropped+repA.Preemptions+repA.VMCreateRetries == 0 {
		t.Errorf("flaky-vm injected nothing at seed 99: %+v", repA)
	}
	// A different seed must move the fault pattern somewhere.
	c, repC := runFaultCampaign(t, "flaky-vm", 100, 2)
	if bytes.Equal(a, c) && reflect.DeepEqual(repA, repC) {
		t.Error("different seeds produced identical faulted campaigns")
	}
}

// TestFaultedCampaignParallelismInvariant pins that the resilience machinery
// preserves the engine's parallelism invariance: retries, preemptions and
// drops land identically whether VM-hours run sequentially or concurrently.
// Under -race this doubles as the concurrent-retry race test.
func TestFaultedCampaignParallelismInvariant(t *testing.T) {
	seq, repSeq := runFaultCampaign(t, "flaky-vm", 41, 1)
	par, repPar := runFaultCampaign(t, "flaky-vm", 41, 4)

	if !bytes.Equal(seq, par) {
		t.Error("faulted measurement stream differs across parallelism")
	}
	if !reflect.DeepEqual(repSeq, repPar) {
		t.Errorf("faulted reports differ across parallelism:\n%+v\n%+v", repSeq, repPar)
	}
}

// TestCongestedServerPartialRounds pins graceful degradation: hour-long
// unavailability windows drop tests instead of aborting, the books balance
// (scheduled = completed + dropped), and the obs counters match the report.
func TestCongestedServerPartialRounds(t *testing.T) {
	f := setup(t)
	prof, err := faults.Named("congested-server")
	if err != nil {
		t.Fatal(err)
	}
	m := newCampaignMetrics("us-east1")
	before := map[string]uint64{
		"scheduled": m.scheduled.Value(),
		"completed": m.completed.Value(),
		"failed":    m.failed.Value(),
		"retried":   m.retried.Value(),
		"dropped":   m.dropped.Value(),
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	servers := f.topo.ServersInCountry("US")[:6]
	sink := &SliceSink{}
	rep, err := f.orch.Run(Config{
		Region:  "us-east1",
		Servers: servers,
		Days:    1,
		Seed:    5,
		// Sparse capture on a campaign that actually drops tests: a
		// dropped test must never reach the capture path.
		CaptureEvery: 48,
		Faults:       prof,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}

	scheduled := len(servers) * 2 * 24
	if rep.Dropped == 0 {
		t.Error("congested-server dropped nothing; unavailability windows not exercised")
	}
	if rep.Tests+rep.Dropped != scheduled {
		t.Errorf("books don't balance: %d completed + %d dropped != %d scheduled",
			rep.Tests, rep.Dropped, scheduled)
	}
	if len(sink.Out) != rep.Tests {
		t.Errorf("sink holds %d records, report says %d tests completed", len(sink.Out), rep.Tests)
	}
	if rep.Failed < rep.Dropped {
		t.Errorf("Failed (%d) < Dropped (%d); every drop implies at least one failure", rep.Failed, rep.Dropped)
	}

	if d := m.scheduled.Value() - before["scheduled"]; d != uint64(scheduled) {
		t.Errorf("scheduled counter delta = %d, want %d", d, scheduled)
	}
	if d := m.completed.Value() - before["completed"]; d != uint64(rep.Tests) {
		t.Errorf("completed counter delta = %d, want %d", d, rep.Tests)
	}
	if d := m.failed.Value() - before["failed"]; d != uint64(rep.Failed) {
		t.Errorf("failed counter delta = %d, want %d", d, rep.Failed)
	}
	if d := m.retried.Value() - before["retried"]; d != uint64(rep.Retried) {
		t.Errorf("retried counter delta = %d, want %d", d, rep.Retried)
	}
	if d := m.dropped.Value() - before["dropped"]; d != uint64(rep.Dropped) {
		t.Errorf("dropped counter delta = %d, want %d", d, rep.Dropped)
	}
}

// TestBreakerShedsRoundsUnderTotalOutage drives the breaker to Open with a
// profile whose servers are always unavailable, and checks whole rounds are
// shed with their tasks accounted as dropped.
func TestBreakerShedsRoundsUnderTotalOutage(t *testing.T) {
	f := setup(t)
	servers := f.topo.ServersInCountry("US")[:6]
	sink := &SliceSink{}
	rep, err := f.orch.Run(Config{
		Region:  "us-east1",
		Servers: servers,
		Days:    1,
		Seed:    3,
		Faults: faults.Profile{
			Name:              "blackout",
			ServerUnavailProb: 1, // every (server, hour) window is down
			TestTimeout:       5 * time.Millisecond,
			MaxRetries:        1,
			BreakerFailFrac:   0.5,
			BreakerMinSamples: 5,
			BreakerCooldown:   2,
		},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	scheduled := len(servers) * 2 * 24
	if rep.Tests != 0 {
		t.Errorf("%d tests completed during a total outage", rep.Tests)
	}
	if rep.Dropped != scheduled {
		t.Errorf("Dropped = %d, want all %d scheduled", rep.Dropped, scheduled)
	}
	if rep.BreakerOpenRounds == 0 {
		t.Error("breaker never opened during a total outage")
	}
	// Cooldown of 2 means at most one executed probe round per 3 hours
	// after the first trip; most of the day must be shed, not executed.
	if rep.BreakerOpenRounds < 12 {
		t.Errorf("only %d rounds shed; breaker not limiting the outage", rep.BreakerOpenRounds)
	}
	if len(sink.Out) != 0 {
		t.Errorf("sink holds %d records from dropped tests", len(sink.Out))
	}
}
