package cloud

import (
	"errors"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/faults"
)

// stubVMFaults rejects the first failFirst create attempts of every VM name.
type stubVMFaults struct{ failFirst int }

func (s stubVMFaults) FailVMCreate(name string, attempt int) error {
	if attempt < s.failFirst {
		return &faults.Error{Kind: faults.KindVMCreate, Site: name}
	}
	return nil
}

func TestCreateVMFaultPath(t *testing.T) {
	p := setup(t)
	p.SetVMFaults(stubVMFaults{failFirst: 2})

	spec := VMSpec{Name: "flaky-1", Region: "us-west1", Tier: bgp.Premium}
	for attempt := 0; attempt < 2; attempt++ {
		_, err := p.CreateVM(spec, t0)
		var fe *faults.Error
		if !errors.As(err, &fe) || fe.Kind != faults.KindVMCreate {
			t.Fatalf("attempt %d: err = %v, want an injected vm-create fault", attempt, err)
		}
		if _, ok := p.GetVM("flaky-1"); ok {
			t.Fatal("failed create left a VM behind")
		}
	}
	vm, err := p.CreateVM(spec, t0)
	if err != nil {
		t.Fatalf("attempt 2 should succeed: %v", err)
	}

	// Success resets the per-name attempt counter: after deletion the next
	// create sequence starts at attempt 0 and fails again.
	if err := p.DeleteVM(vm.Name, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateVM(spec, t0.Add(time.Hour)); err == nil {
		t.Fatal("attempt counter did not reset after a successful create")
	}

	// Removing the injector restores the fault-free control plane.
	p.SetVMFaults(nil)
	if _, err := p.CreateVM(spec, t0.Add(2*time.Hour)); err != nil {
		t.Fatalf("create with injector removed: %v", err)
	}
}

func TestCreateVMFaultConsumesNoZoneSlot(t *testing.T) {
	p := setup(t)
	p.SetVMFaults(stubVMFaults{failFirst: 3})
	create := func(name string) *VM {
		spec := VMSpec{Name: name, Region: "us-west1", Tier: bgp.Premium}
		for i := 0; i < 3; i++ {
			if _, err := p.CreateVM(spec, t0); err == nil {
				t.Fatalf("%s attempt %d unexpectedly succeeded", name, i)
			}
		}
		vm, err := p.CreateVM(spec, t0)
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	a := create("zoned-1")
	b := create("zoned-2")
	// Three rejected attempts must not advance the round-robin: the two
	// provisioned VMs land in the region's first two zones.
	region, _ := p.topo.Region("us-west1")
	if a.Zone != region.Zones[0] || b.Zone != region.Zones[1] {
		t.Errorf("zones = %s, %s; want %s, %s (failed attempts consumed slots)",
			a.Zone, b.Zone, region.Zones[0], region.Zones[1])
	}
}

func TestPreempt(t *testing.T) {
	p := setup(t)
	vm, err := p.CreateVM(VMSpec{Name: "doomed-1", Region: "us-west1", Tier: bgp.Premium}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Preempt(vm.Name, t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.GetVM(vm.Name); ok {
		t.Error("preempted VM still listed")
	}
	if got := p.Preemptions(); got != 1 {
		t.Errorf("Preemptions() = %d, want 1", got)
	}
	if c := p.Costs(); c.ComputeUSD <= 0 {
		t.Error("preemption accrued no compute cost for the VM's runtime")
	}
	// The name is free for the replacement instance.
	if _, err := p.CreateVM(vm.VMSpec, t0.Add(2*time.Hour)); err != nil {
		t.Errorf("re-creating preempted VM: %v", err)
	}
	if err := p.Preempt("never-existed", t0); err == nil {
		t.Error("preempting an unknown VM did not error")
	}
}
