package cloud

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func setup(t *testing.T) *Platform {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, nil, netsim.Config{Seed: 2})
	return New(topo, sim, Pricing{})
}

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func TestVMLifecycle(t *testing.T) {
	p := setup(t)
	vm, err := p.CreateVM(VMSpec{Name: "meas-1", Region: "us-west1", Tier: bgp.Premium}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Type.Name != "n1-standard-2" {
		t.Errorf("default machine type = %q", vm.Type.Name)
	}
	if !vm.IP.IsValid() {
		t.Error("VM has no IP")
	}
	if vm.Zone == "" {
		t.Error("zone not assigned")
	}
	got, ok := p.GetVM("meas-1")
	if !ok || got != vm {
		t.Error("GetVM broken")
	}
	if err := p.DeleteVM("meas-1", t0.Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.GetVM("meas-1"); ok {
		t.Error("deleted VM still present")
	}
	// Two days of n1-standard-2 accrued.
	c := p.Costs()
	want := 48 * N1Standard2.HourlyUSD
	if c.ComputeUSD < want*0.99 || c.ComputeUSD > want*1.01 {
		t.Errorf("compute cost = %v, want ~%v", c.ComputeUSD, want)
	}
}

func TestVMZoneSpreading(t *testing.T) {
	p := setup(t)
	zones := make(map[string]int)
	for i := 0; i < 6; i++ {
		vm, err := p.CreateVM(VMSpec{Name: string(rune('a' + i)), Region: "us-east1"}, t0)
		if err != nil {
			t.Fatal(err)
		}
		zones[vm.Zone]++
	}
	if len(zones) != 3 {
		t.Errorf("VMs spread over %d zones, want 3", len(zones))
	}
	for z, n := range zones {
		if n != 2 {
			t.Errorf("zone %s has %d VMs, want 2", z, n)
		}
	}
}

func TestVMErrors(t *testing.T) {
	p := setup(t)
	if _, err := p.CreateVM(VMSpec{Region: "us-west1"}, t0); err == nil {
		t.Error("nameless VM created")
	}
	if _, err := p.CreateVM(VMSpec{Name: "x", Region: "atlantis"}, t0); err == nil {
		t.Error("unknown region accepted")
	}
	if _, err := p.CreateVM(VMSpec{Name: "x", Region: "us-west1", Zone: "us-east1-a"}, t0); err == nil {
		t.Error("foreign zone accepted")
	}
	if _, err := p.CreateVM(VMSpec{Name: "dup", Region: "us-west1"}, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateVM(VMSpec{Name: "dup", Region: "us-west1"}, t0); err == nil {
		t.Error("duplicate VM accepted")
	}
	if err := p.DeleteVM("ghost", t0); err == nil {
		t.Error("deleting missing VM succeeded")
	}
}

func TestListVMs(t *testing.T) {
	p := setup(t)
	p.CreateVM(VMSpec{Name: "b", Region: "us-west1"}, t0)
	p.CreateVM(VMSpec{Name: "a", Region: "us-west1"}, t0)
	p.CreateVM(VMSpec{Name: "c", Region: "us-east1"}, t0)
	west := p.ListVMs("us-west1")
	if len(west) != 2 || west[0].Name != "a" || west[1].Name != "b" {
		t.Errorf("ListVMs(us-west1) = %v", west)
	}
	if len(p.ListVMs("")) != 3 {
		t.Error("ListVMs all broken")
	}
}

func TestMachineTypeByName(t *testing.T) {
	if mt, ok := MachineTypeByName("n2-standard-2"); !ok || mt.VCPUs != 2 {
		t.Error("n2-standard-2 lookup broken")
	}
	if _, ok := MachineTypeByName("f1-micro"); ok {
		t.Error("unknown type resolved")
	}
}

func TestBucketOperations(t *testing.T) {
	p := setup(t)
	b, err := p.CreateBucket("clasp-data", "us-east1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateBucket("clasp-data", "us-east1"); err == nil {
		t.Error("duplicate bucket accepted")
	}
	if _, err := p.CreateBucket("x", "atlantis"); err == nil {
		t.Error("bucket in unknown region accepted")
	}
	if err := b.Put("", []byte("x"), t0); err == nil {
		t.Error("empty key accepted")
	}
	data := []byte("pcap bytes")
	if err := b.Put("us-east1/2020-05-01/test1.pcap", data, t0); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // must not affect the stored copy
	got, ok := b.Get("us-east1/2020-05-01/test1.pcap")
	if !ok || string(got) != "pcap bytes" {
		t.Errorf("Get = %q ok=%v", got, ok)
	}
	got[1] = 'Y'
	again, _ := b.Get("us-east1/2020-05-01/test1.pcap")
	if string(again) != "pcap bytes" {
		t.Error("Get exposes internal buffer")
	}
	b.Put("us-east1/2020-05-02/test2.pcap", []byte("more"), t0)
	b.Put("us-west1/other", []byte("x"), t0)
	keys := b.List("us-east1/")
	if len(keys) != 2 || keys[0] > keys[1] {
		t.Errorf("List = %v", keys)
	}
	if b.Size() != int64(len("pcap bytes")+len("more")+1) {
		t.Errorf("Size = %d", b.Size())
	}
	if !b.Delete("us-west1/other") || b.Delete("us-west1/other") {
		t.Error("Delete semantics broken")
	}
	if got, ok := p.GetBucket("clasp-data"); !ok || got != b {
		t.Error("GetBucket broken")
	}
}

func TestEgressBilling(t *testing.T) {
	p := setup(t)
	// 100 GB premium + 100 GB standard.
	p.RecordEgress(bgp.Premium, 100e9)
	p.RecordEgress(bgp.Standard, 100e9)
	c := p.Costs()
	want := 100*0.11 + 100*0.085
	if c.EgressUSD < want-0.01 || c.EgressUSD > want+0.01 {
		t.Errorf("egress cost = %v, want %v", c.EgressUSD, want)
	}
	if c.Total() != c.EgressUSD+c.StorageUSD+c.ComputeUSD {
		t.Error("Total broken")
	}
}

func TestAccrueVMHours(t *testing.T) {
	p := setup(t)
	p.AccrueVMHours(10, 24*time.Hour, N1Standard2)
	c := p.Costs()
	want := 10 * 24 * N1Standard2.HourlyUSD
	if c.ComputeUSD < want*0.99 || c.ComputeUSD > want*1.01 {
		t.Errorf("compute = %v, want %v", c.ComputeUSD, want)
	}
}

// TestConcurrentAccounting exercises the billing and bucket paths from many
// goroutines at once; -race verifies the locking, the final sums verify no
// update was dropped.
func TestConcurrentAccounting(t *testing.T) {
	p := setup(t)
	b, err := p.CreateBucket("data", "us-east1")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, ops = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				p.RecordEgress(bgp.Premium, 1e9)
				p.AccrueVMHours(1, time.Hour, N1Standard2)
				key := fmt.Sprintf("g%d/obj%d", g, i)
				b.Put(key, []byte("x"), t0)
				b.Get(key)
				p.Costs()
			}
		}(g)
	}
	wg.Wait()
	c := p.Costs()
	wantEgress := float64(goroutines*ops) * 0.11 // 1 GB premium per op
	if c.EgressUSD < wantEgress*0.999 || c.EgressUSD > wantEgress*1.001 {
		t.Errorf("egress = %v, want ~%v", c.EgressUSD, wantEgress)
	}
	wantCompute := float64(goroutines*ops) * N1Standard2.HourlyUSD
	if c.ComputeUSD < wantCompute*0.999 || c.ComputeUSD > wantCompute*1.001 {
		t.Errorf("compute = %v, want ~%v", c.ComputeUSD, wantCompute)
	}
	if got := len(b.List("")); got != goroutines*ops {
		t.Errorf("bucket objects = %d, want %d", got, goroutines*ops)
	}
}

func TestStorageBilling(t *testing.T) {
	p := setup(t)
	b, _ := p.CreateBucket("data", "us-east1")
	blob := make([]byte, 1e6)
	for i := 0; i < 100; i++ {
		b.Put(time.Duration(i).String(), blob, t0)
	}
	c := p.Costs()
	want := 0.1 * 0.020 // 0.1 GB at $0.02/GB-month
	if c.StorageUSD < want*0.9 || c.StorageUSD > want*1.1 {
		t.Errorf("storage cost = %v, want ~%v", c.StorageUSD, want)
	}
}
