// Package cloud is the GCP-like substrate CLASP orchestrates: regions and
// zones, VM lifecycle with machine types and network tiers, object-storage
// buckets, and egress/storage/VM billing. The paper's deployment decisions
// (asymmetric tc caps, per-region VM counts, one storage bucket colocated
// with the analysis VM) are all driven by the cost model this package
// implements.
//
// Platform and Bucket are safe for concurrent use: VM lifecycle, bucket
// operations, and the egress/compute/storage accounting are all guarded by
// internal mutexes, so concurrent regional campaigns can share one
// Platform and one artifact Bucket.
package cloud

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// Billing telemetry (see DESIGN.md §8): egress bytes metered per network
// tier, mirroring the asymmetric premium/standard billing the paper's
// deployment budget is built around.
var obsEgressBytes = map[bgp.Tier]*obs.Counter{
	bgp.Premium:  obs.Default().Counter("cloud_egress_bytes_total", "tier", "premium"),
	bgp.Standard: obs.Default().Counter("cloud_egress_bytes_total", "tier", "standard"),
}

// Fault telemetry: injected control-plane rejections and VM preemptions.
var (
	obsCreateFaults = obs.Default().Counter("cloud_vm_create_faults_total")
	obsPreemptions  = obs.Default().Counter("cloud_vm_preemptions_total")
)

// VMFaults injects control-plane failures into the platform. The campaign
// fault injector (internal/faults) implements it; decisions must be
// deterministic in (name, attempt). A nil injector disables the fault path
// entirely.
type VMFaults interface {
	FailVMCreate(name string, attempt int) error
}

// MachineType describes a VM shape.
type MachineType struct {
	Name       string
	VCPUs      int
	MemGB      float64
	EgressGbps float64 // NIC egress cap before tc shaping
	HourlyUSD  float64
}

// The machine types the paper used (§3.2).
var (
	N1Standard2 = MachineType{Name: "n1-standard-2", VCPUs: 2, MemGB: 7.5, EgressGbps: 10, HourlyUSD: 0.095}
	N2Standard2 = MachineType{Name: "n2-standard-2", VCPUs: 2, MemGB: 8, EgressGbps: 10, HourlyUSD: 0.097}
)

// MachineTypeByName resolves a machine type name.
func MachineTypeByName(name string) (MachineType, bool) {
	switch name {
	case N1Standard2.Name:
		return N1Standard2, true
	case N2Standard2.Name:
		return N2Standard2, true
	}
	return MachineType{}, false
}

// VMState is a VM lifecycle state.
type VMState int

// VM lifecycle states.
const (
	VMRunning VMState = iota
	VMTerminated
)

// VMSpec is a VM creation request.
type VMSpec struct {
	Name   string
	Region string
	Zone   string // empty picks a zone round-robin
	Type   MachineType
	Tier   bgp.Tier
	Labels map[string]string
	// DownlinkMbps/UplinkMbps are the tc caps applied inside the guest
	// (1000/100 in the paper). Zero means unshaped.
	DownlinkMbps float64
	UplinkMbps   float64
}

// VM is a provisioned instance.
type VM struct {
	VMSpec
	IP      netip.Addr
	Created time.Time
	State   VMState
}

// Pricing is the billing rate card (USD).
type Pricing struct {
	EgressPremiumPerGB  float64
	EgressStandardPerGB float64
	StoragePerGBMonth   float64
}

// DefaultPricing approximates GCP's 2020 rate card.
func DefaultPricing() Pricing {
	return Pricing{
		EgressPremiumPerGB:  0.11,
		EgressStandardPerGB: 0.085,
		StoragePerGBMonth:   0.020,
	}
}

// Platform is the cloud control plane.
type Platform struct {
	topo    *topology.Topology
	sim     *netsim.Sim
	pricing Pricing

	mu             sync.Mutex
	vms            map[string]*VM
	buckets        map[string]*Bucket
	zoneNext       map[string]int
	egressGB       map[bgp.Tier]float64
	computeUSD     float64
	vmFaults       VMFaults
	createAttempts map[string]int
	preemptions    int
}

// New creates a platform over the topology and simulator.
func New(topo *topology.Topology, sim *netsim.Sim, pricing Pricing) *Platform {
	if pricing == (Pricing{}) {
		pricing = DefaultPricing()
	}
	return &Platform{
		topo:           topo,
		sim:            sim,
		pricing:        pricing,
		vms:            make(map[string]*VM),
		buckets:        make(map[string]*Bucket),
		zoneNext:       make(map[string]int),
		egressGB:       make(map[bgp.Tier]float64),
		createAttempts: make(map[string]int),
	}
}

// SetVMFaults installs (or, with nil, removes) a control-plane fault
// injector. Campaigns sharing one Platform must install the same injector
// — the orchestrator does this from the campaign profile, and core gives
// every campaign of a platform the same profile and seed, so concurrent
// installs are idempotent.
func (p *Platform) SetVMFaults(f VMFaults) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.vmFaults = f
}

// CreateVM provisions a VM, spreading unspecified zones across the region
// round-robin (the paper balanced measurement VMs across zones).
func (p *Platform) CreateVM(spec VMSpec, at time.Time) (*VM, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("cloud: VM name required")
	}
	region, ok := p.topo.Region(spec.Region)
	if !ok {
		return nil, fmt.Errorf("cloud: unknown region %q", spec.Region)
	}
	if spec.Type.Name == "" {
		spec.Type = N1Standard2
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.vms[spec.Name]; dup {
		return nil, fmt.Errorf("cloud: VM %q already exists", spec.Name)
	}
	// Injected control-plane rejection. Checked before the zone pick so a
	// failed attempt consumes no round-robin slot; attempts are counted per
	// name (sequential per caller retry loop) and reset on success, keeping
	// the fault sequence deterministic for a given seed.
	if p.vmFaults != nil {
		attempt := p.createAttempts[spec.Name]
		p.createAttempts[spec.Name] = attempt + 1
		if err := p.vmFaults.FailVMCreate(spec.Name, attempt); err != nil {
			obsCreateFaults.Inc()
			return nil, fmt.Errorf("cloud: creating VM %q: %w", spec.Name, err)
		}
		delete(p.createAttempts, spec.Name)
	}
	zoneIdx := 0
	if spec.Zone == "" {
		zoneIdx = p.zoneNext[spec.Region] % len(region.Zones)
		p.zoneNext[spec.Region]++
		spec.Zone = region.Zones[zoneIdx]
	} else {
		found := false
		for i, z := range region.Zones {
			if z == spec.Zone {
				zoneIdx, found = i, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cloud: zone %q not in region %q", spec.Zone, spec.Region)
		}
	}
	vm := &VM{
		VMSpec:  spec,
		IP:      p.sim.VMAddr(spec.Region, zoneIdx, len(p.vms)),
		Created: at,
		State:   VMRunning,
	}
	p.vms[spec.Name] = vm
	return vm, nil
}

// GetVM returns a VM by name.
func (p *Platform) GetVM(name string) (*VM, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	vm, ok := p.vms[name]
	return vm, ok
}

// DeleteVM terminates and removes a VM, accruing its runtime hours.
func (p *Platform) DeleteVM(name string, at time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	vm, ok := p.vms[name]
	if !ok {
		return fmt.Errorf("cloud: VM %q not found", name)
	}
	if vm.State == VMRunning {
		if hours := at.Sub(vm.Created).Hours(); hours > 0 {
			p.computeUSD += hours * vm.Type.HourlyUSD
		}
	}
	vm.State = VMTerminated
	delete(p.vms, name)
	return nil
}

// Preempt terminates a running VM out from under its owner — the simulated
// equivalent of a GCP preemption or host maintenance event. Like DeleteVM
// it accrues the VM's runtime cost and frees the name for re-creation, but
// it also counts the event so resilience accounting can distinguish
// planned teardown from failure.
func (p *Platform) Preempt(name string, at time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	vm, ok := p.vms[name]
	if !ok {
		return fmt.Errorf("cloud: VM %q not found", name)
	}
	if hours := at.Sub(vm.Created).Hours(); hours > 0 {
		p.computeUSD += hours * vm.Type.HourlyUSD
	}
	vm.State = VMTerminated
	delete(p.vms, name)
	p.preemptions++
	obsPreemptions.Inc()
	return nil
}

// CreateAttempts returns a copy of the per-name CreateVM attempt counters.
// The counters are the only fault-injection state the control plane keeps
// (FailVMCreate keys on (name, attempt), and a failed creation leaves its
// counter behind for the next retry), so the campaign checkpoint persists
// them: a resumed run restores the counters and every post-resume creation
// draws the same injected decision the uninterrupted run would have.
func (p *Platform) CreateAttempts() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.createAttempts) == 0 {
		return nil
	}
	out := make(map[string]int, len(p.createAttempts))
	for k, v := range p.createAttempts {
		out[k] = v
	}
	return out
}

// RestoreCreateAttempts replaces the per-name CreateVM attempt counters
// with a snapshot taken by CreateAttempts — the resume half of the
// checkpoint contract.
func (p *Platform) RestoreCreateAttempts(m map[string]int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.createAttempts = make(map[string]int, len(m))
	for k, v := range m {
		p.createAttempts[k] = v
	}
}

// Preemptions returns how many VMs the platform has preempted.
func (p *Platform) Preemptions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.preemptions
}

// ListVMs returns VMs, optionally filtered by region, sorted by name.
func (p *Platform) ListVMs(region string) []*VM {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*VM
	for _, vm := range p.vms {
		if region == "" || vm.Region == region {
			out = append(out, vm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RecordEgress meters bytes leaving the cloud from a VM (uploads and test
// traffic toward the Internet). GCP charges egress only (§3.2's rationale
// for the asymmetric caps).
func (p *Platform) RecordEgress(tier bgp.Tier, bytes int64) {
	if c := obsEgressBytes[tier]; c != nil && bytes > 0 {
		c.Add(uint64(bytes))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.egressGB[tier] += float64(bytes) / 1e9
}

// AccrueVMHours adds running-time cost for a set of VMs over a duration
// (used by the orchestrator's virtual clock instead of wall time).
func (p *Platform) AccrueVMHours(vmCount int, d time.Duration, t MachineType) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.computeUSD += float64(vmCount) * d.Hours() * t.HourlyUSD
}

// Costs summarises accrued spend.
type Costs struct {
	EgressUSD  float64
	StorageUSD float64
	ComputeUSD float64
}

// Total returns the sum of all cost components.
func (c Costs) Total() float64 { return c.EgressUSD + c.StorageUSD + c.ComputeUSD }

// Costs returns the current bill.
func (p *Platform) Costs() Costs {
	p.mu.Lock()
	defer p.mu.Unlock()
	var c Costs
	c.EgressUSD = p.egressGB[bgp.Premium]*p.pricing.EgressPremiumPerGB +
		p.egressGB[bgp.Standard]*p.pricing.EgressStandardPerGB
	var storageGB float64
	for _, b := range p.buckets {
		storageGB += float64(b.Size()) / 1e9
	}
	c.StorageUSD = storageGB * p.pricing.StoragePerGBMonth
	c.ComputeUSD = p.computeUSD
	return c
}

// --- Object storage -----------------------------------------------------------

// Object is one stored blob with metadata.
type Object struct {
	Key     string
	Data    []byte
	Updated time.Time
}

// Bucket is an object-storage bucket pinned to a region.
type Bucket struct {
	Name   string
	Region string

	mu      sync.Mutex
	objects map[string]Object
}

// CreateBucket makes a bucket in a region.
func (p *Platform) CreateBucket(name, region string) (*Bucket, error) {
	if _, ok := p.topo.Region(region); !ok {
		return nil, fmt.Errorf("cloud: unknown region %q", region)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.buckets[name]; dup {
		return nil, fmt.Errorf("cloud: bucket %q already exists", name)
	}
	b := &Bucket{Name: name, Region: region, objects: make(map[string]Object)}
	p.buckets[name] = b
	return b, nil
}

// GetBucket returns a bucket by name.
func (p *Platform) GetBucket(name string) (*Bucket, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.buckets[name]
	return b, ok
}

// Put stores an object (copying data).
func (b *Bucket) Put(key string, data []byte, at time.Time) error {
	if key == "" {
		return fmt.Errorf("cloud: empty object key")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.objects[key] = Object{Key: key, Data: cp, Updated: at}
	return nil
}

// Get fetches an object's data.
func (b *Bucket) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objects[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(o.Data))
	copy(cp, o.Data)
	return cp, true
}

// Delete removes an object.
func (b *Bucket) Delete(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.objects[key]; !ok {
		return false
	}
	delete(b.objects, key)
	return true
}

// List returns object keys with the given prefix, sorted.
func (b *Bucket) List(prefix string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the total stored bytes.
func (b *Bucket) Size() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sizeLocked()
}

func (b *Bucket) sizeLocked() int64 {
	var n int64
	for _, o := range b.objects {
		n += int64(len(o.Data))
	}
	return n
}
