// Package bgp computes AS-level routes over the synthetic topology using the
// standard Gao-Rexford model (valley-free paths, customer > peer > provider
// preference, shortest AS path, lowest-ASN tie-break), and implements the
// cloud's two network-tier egress/ingress policies:
//
//   - Premium tier: cold-potato. Outgoing traffic rides the cloud's private
//     WAN and exits at the interconnection nearest the destination; incoming
//     traffic is handed off by the neighbor near the source and rides the
//     WAN to the region.
//   - Standard tier: hot-potato. Outgoing traffic exits at an interconnection
//     near the origin region and crosses the public Internet; incoming
//     traffic stays on the public Internet and enters near the region.
package bgp

import (
	"fmt"
	"sort"
	"sync"

	"github.com/clasp-measurement/clasp/internal/geo"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// ASN aliases the topology AS number type.
type ASN = topology.ASN

// Tier selects the cloud network service tier.
type Tier int

// The cloud's two network service tiers.
const (
	Premium Tier = iota
	Standard
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	if t == Premium {
		return "premium"
	}
	return "standard"
}

// route classes in preference order.
const (
	classCustomer = iota
	classPeer
	classProvider
	classNone
)

// Tree is the routing state toward one destination AS: for every AS, the
// best valley-free route (class, AS-hop distance, next hop).
type Tree struct {
	dst ASN
	// per class: distance and next hop toward dst. dist < 0 means none.
	dist [3]map[ASN]int
	next [3]map[ASN]ASN
}

// Router computes and caches routing trees over a topology.
type Router struct {
	topo *topology.Topology

	mu    sync.Mutex
	trees map[ASN]*Tree

	linkMu    sync.Mutex
	linkCache map[linkCacheKey]*topology.Interconnect
}

type linkCacheKey struct {
	region   string
	neighbor ASN
	anchor   string
}

// NewRouter creates a router for the given topology.
func NewRouter(t *topology.Topology) *Router {
	return &Router{
		topo:      t,
		trees:     make(map[ASN]*Tree),
		linkCache: make(map[linkCacheKey]*topology.Interconnect),
	}
}

// TreeTo returns the (cached) routing tree toward dst.
func (r *Router) TreeTo(dst ASN) *Tree {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr, ok := r.trees[dst]; ok {
		return tr
	}
	tr := r.compute(dst)
	r.trees[dst] = tr
	return tr
}

// compute runs the three-phase Gao-Rexford propagation toward dst.
func (r *Router) compute(dst ASN) *Tree {
	t := r.topo
	tr := &Tree{dst: dst}
	for c := 0; c < 3; c++ {
		tr.dist[c] = make(map[ASN]int)
		tr.next[c] = make(map[ASN]ASN)
	}

	// Phase 1: customer routes. An AS has a customer route if dst sits in
	// its customer cone. BFS from dst following customer->provider edges.
	type qe struct {
		asn  ASN
		dist int
	}
	queue := []qe{{dst, 0}}
	tr.dist[classCustomer][dst] = 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if tr.dist[classCustomer][cur.asn] != cur.dist {
			continue // superseded
		}
		provs := append([]ASN(nil), t.Providers(cur.asn)...)
		sort.Slice(provs, func(i, j int) bool { return provs[i] < provs[j] })
		for _, p := range provs {
			nd := cur.dist + 1
			if d, ok := tr.dist[classCustomer][p]; !ok || nd < d ||
				(nd == d && cur.asn < tr.next[classCustomer][p]) {
				if !ok || nd < tr.dist[classCustomer][p] {
					queue = append(queue, qe{p, nd})
				}
				tr.dist[classCustomer][p] = nd
				tr.next[classCustomer][p] = cur.asn
			}
		}
	}

	// Phase 2: peer routes. One peer edge, then a customer route.
	for asn, d := range tr.dist[classCustomer] {
		for _, p := range t.Peers(asn) {
			nd := d + 1
			if cur, ok := tr.dist[classPeer][p]; !ok || nd < cur ||
				(nd == cur && asn < tr.next[classPeer][p]) {
				tr.dist[classPeer][p] = nd
				tr.next[classPeer][p] = asn
			}
		}
	}

	// Phase 3: provider routes. An AS learns from each provider that
	// provider's best exportable route. Process by increasing distance
	// (unit weights -> bucketed BFS).
	best := func(asn ASN) (int, bool) {
		if d, ok := tr.dist[classCustomer][asn]; ok {
			return d, true
		}
		if d, ok := tr.dist[classPeer][asn]; ok {
			return d, true
		}
		if d, ok := tr.dist[classProvider][asn]; ok {
			return d, true
		}
		return 0, false
	}
	// Seed buckets with every AS that already has a route.
	buckets := make([][]ASN, 1)
	push := func(d int, a ASN) {
		for len(buckets) <= d {
			buckets = append(buckets, nil)
		}
		buckets[d] = append(buckets[d], a)
	}
	for _, a := range t.ASes() {
		if d, ok := best(a.ASN); ok {
			push(d, a.ASN)
		}
	}
	for d := 0; d < len(buckets); d++ {
		// Sort for deterministic tie-breaking.
		bs := buckets[d]
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		for _, u := range bs {
			bd, ok := best(u)
			if !ok || bd != d {
				continue // superseded by a better route
			}
			custs := append([]ASN(nil), t.Customers(u)...)
			sort.Slice(custs, func(i, j int) bool { return custs[i] < custs[j] })
			for _, c := range custs {
				// Customer/peer routes always beat provider routes;
				// never overwrite them.
				if _, has := tr.dist[classCustomer][c]; has {
					continue
				}
				if _, has := tr.dist[classPeer][c]; has {
					continue
				}
				nd := d + 1
				if cur, ok := tr.dist[classProvider][c]; !ok || nd < cur ||
					(nd == cur && u < tr.next[classProvider][c]) {
					if !ok || nd < tr.dist[classProvider][c] {
						push(nd, c)
					}
					tr.dist[classProvider][c] = nd
					tr.next[classProvider][c] = u
				}
			}
		}
	}
	return tr
}

// Path returns the AS path from src to the tree's destination, inclusive of
// both endpoints. ok is false when src has no valley-free route.
func (tr *Tree) Path(src ASN) ([]ASN, bool) {
	if src == tr.dst {
		return []ASN{src}, true
	}
	var path []ASN
	cur := src
	// After the first peer or provider edge the remaining path must
	// descend through customer routes (valley-free); the stored per-class
	// next hops encode exactly that.
	for cur != tr.dst {
		path = append(path, cur)
		if len(path) > 64 {
			return nil, false // defensive: malformed state
		}
		var next ASN
		if _, ok := tr.dist[classCustomer][cur]; ok {
			next = tr.next[classCustomer][cur]
		} else if _, ok := tr.dist[classPeer][cur]; ok {
			next = tr.next[classPeer][cur]
		} else if _, ok := tr.dist[classProvider][cur]; ok {
			next = tr.next[classProvider][cur]
		} else {
			return nil, false
		}
		cur = next
	}
	return append(path, tr.dst), true
}

// Dist returns the AS-hop distance from src to the destination and whether a
// route exists.
func (tr *Tree) Dist(src ASN) (int, bool) {
	if src == tr.dst {
		return 0, true
	}
	for c := 0; c < 3; c++ {
		if d, ok := tr.dist[c][src]; ok {
			return d, true
		}
	}
	return 0, false
}

// Path returns the AS path from src to dst.
func (r *Router) Path(src, dst ASN) ([]ASN, bool) {
	return r.TreeTo(dst).Path(src)
}

// ASPathLen returns the number of AS hops (path length - 1) between src and
// dst, or -1 when unreachable.
func (r *Router) ASPathLen(src, dst ASN) int {
	if d, ok := r.TreeTo(dst).Dist(src); ok {
		return d
	}
	return -1
}

// EgressChoice describes the cloud-side routing decision for one flow.
type EgressChoice struct {
	Link *topology.Interconnect // interconnect crossed
	Path []ASN                  // AS path cloud -> destination (inclusive)
}

// EgressLink selects the interconnect for traffic from a region to a
// destination AS located at dstCity, under the given tier policy.
func (r *Router) EgressLink(region string, dstASN ASN, dstCity string, tier Tier) (EgressChoice, error) {
	t := r.topo
	path, ok := r.Path(t.Cloud.ASN, dstASN)
	if !ok || len(path) < 2 {
		return EgressChoice{}, fmt.Errorf("bgp: no route from cloud to AS%d", dstASN)
	}
	neighbor := path[1]
	anchorCity := dstCity
	if tier == Standard {
		reg, ok := t.Region(region)
		if !ok {
			return EgressChoice{}, fmt.Errorf("bgp: unknown region %q", region)
		}
		anchorCity = reg.City
	}
	link, err := r.nearestVisibleLink(region, neighbor, anchorCity)
	if err != nil {
		return EgressChoice{}, err
	}
	return EgressChoice{Link: link, Path: path}, nil
}

// IngressLink selects the interconnect where traffic from srcASN (at
// srcCity) enters the cloud on its way to a region, under the given tier.
func (r *Router) IngressLink(region string, srcASN ASN, srcCity string, tier Tier) (EgressChoice, error) {
	t := r.topo
	path, ok := r.Path(srcASN, t.Cloud.ASN)
	if !ok || len(path) < 2 {
		return EgressChoice{}, fmt.Errorf("bgp: no route from AS%d to cloud", srcASN)
	}
	neighbor := path[len(path)-2]
	anchorCity := srcCity
	if tier == Standard {
		reg, ok := t.Region(region)
		if !ok {
			return EgressChoice{}, fmt.Errorf("bgp: unknown region %q", region)
		}
		anchorCity = reg.City
	}
	link, err := r.nearestVisibleLink(region, neighbor, anchorCity)
	if err != nil {
		return EgressChoice{}, err
	}
	return EgressChoice{Link: link, Path: path}, nil
}

// nearestVisibleLink picks the region-visible link with the given neighbor
// whose facility is closest to anchorCity, breaking ties by lowest link ID.
// Choices are cached: the decision is a pure function of its inputs.
func (r *Router) nearestVisibleLink(region string, neighbor ASN, anchorCity string) (*topology.Interconnect, error) {
	key := linkCacheKey{region: region, neighbor: neighbor, anchor: anchorCity}
	r.linkMu.Lock()
	if l, ok := r.linkCache[key]; ok {
		r.linkMu.Unlock()
		return l, nil
	}
	r.linkMu.Unlock()
	t := r.topo
	anchor, ok := t.CityCoord(anchorCity)
	if !ok {
		return nil, fmt.Errorf("bgp: unknown city %q", anchorCity)
	}
	var best *topology.Interconnect
	bestD := 0.0
	for _, l := range t.LinksOf(neighbor) {
		if !t.IsVisible(region, l.ID) {
			continue
		}
		c, ok := t.CityCoord(l.City)
		if !ok {
			continue
		}
		d := geo.DistanceKm(anchor, c)
		if best == nil || d < bestD || (d == bestD && l.ID < best.ID) {
			best, bestD = l, d
		}
	}
	if best == nil {
		return nil, fmt.Errorf("bgp: neighbor AS%d has no visible link in %s", neighbor, region)
	}
	r.linkMu.Lock()
	r.linkCache[key] = best
	r.linkMu.Unlock()
	return best, nil
}

// EgressForProbe resolves the interconnect for a pilot probe target, which
// is engineered onto a specific link. Falls back to EgressLink when the
// address has no engineered link or that link is not visible from region.
func (r *Router) EgressForProbe(region string, probe *ProbeDest) (EgressChoice, error) {
	t := r.topo
	if probe.LinkID >= 0 && t.IsVisible(region, probe.LinkID) {
		link := t.Link(probe.LinkID)
		path, ok := r.Path(t.Cloud.ASN, probe.ASN)
		if ok {
			// Respect the engineered link even when the default
			// best path would pick a different neighbor.
			if len(path) < 2 || path[1] != link.Neighbor {
				path = []ASN{t.Cloud.ASN, link.Neighbor, probe.ASN}
				if link.Neighbor == probe.ASN {
					path = path[:2]
				}
			}
			return EgressChoice{Link: link, Path: path}, nil
		}
	}
	return r.EgressLink(region, probe.ASN, probe.City, Premium)
}

// ProbeDest is a pilot-scan destination: an address engineered through a
// known link.
type ProbeDest struct {
	ASN    ASN
	City   string
	LinkID int // -1 when not engineered
}
