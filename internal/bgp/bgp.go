// Package bgp computes AS-level routes over the synthetic topology using the
// standard Gao-Rexford model (valley-free paths, customer > peer > provider
// preference, shortest AS path, lowest-ASN tie-break), and implements the
// cloud's two network-tier egress/ingress policies:
//
//   - Premium tier: cold-potato. Outgoing traffic rides the cloud's private
//     WAN and exits at the interconnection nearest the destination; incoming
//     traffic is handed off by the neighbor near the source and rides the
//     WAN to the region.
//   - Standard tier: hot-potato. Outgoing traffic exits at an interconnection
//     near the origin region and crosses the public Internet; incoming
//     traffic stays on the public Internet and enters near the region.
//
// Routing state is cached aggressively: trees and link choices are pure
// functions of the topology, computed once and then served from lock-free
// sync.Map reads, so concurrent measurement workers never contend on a
// route that is already known. Warm precomputes the tree set up front.
package bgp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/geo"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// Route-cache telemetry (see DESIGN.md §8). Updates no-op while the obs
// registry is disabled, so the lock-free cache hit paths stay at their PR 2
// cost.
var (
	obsTreeHits   = obs.Default().Counter("bgp_tree_cache_hits_total")
	obsTreeMisses = obs.Default().Counter("bgp_tree_cache_misses_total")
	obsTreeFills  = obs.Default().Counter("bgp_tree_fills_total")
	obsLinkHits   = obs.Default().Counter("bgp_link_cache_hits_total")
	obsLinkMisses = obs.Default().Counter("bgp_link_cache_misses_total")
	obsWarmDur    = obs.Default().Histogram("bgp_warm_duration_ns")
)

// ASN aliases the topology AS number type.
type ASN = topology.ASN

// Tier selects the cloud network service tier.
type Tier int

// The cloud's two network service tiers.
const (
	Premium Tier = iota
	Standard
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	if t == Premium {
		return "premium"
	}
	return "standard"
}

// route classes in preference order.
const (
	classCustomer = iota
	classPeer
	classProvider
	classNone
)

// denseGraph is the topology's AS relationships re-indexed by the contiguous
// AS index (position in generation order), with neighbor lists pre-sorted by
// neighbor ASN — the order every tie-break in compute needs. Built once per
// Router; afterwards route computation touches no maps and sorts nothing
// per destination.
type denseGraph struct {
	n         int
	asns      []ASN         // index -> ASN
	index     map[ASN]int32 // ASN -> index
	providers [][]int32     // customer -> providers, sorted by provider ASN
	customers [][]int32     // provider -> customers, sorted by customer ASN
	peers     [][]int32     // sorted by peer ASN
}

func buildDense(t *topology.Topology) *denseGraph {
	ases := t.ASes()
	g := &denseGraph{
		n:         len(ases),
		asns:      make([]ASN, len(ases)),
		index:     make(map[ASN]int32, len(ases)),
		providers: make([][]int32, len(ases)),
		customers: make([][]int32, len(ases)),
		peers:     make([][]int32, len(ases)),
	}
	for i, a := range ases {
		g.asns[i] = a.ASN
		g.index[a.ASN] = int32(i)
	}
	conv := func(ns []ASN) []int32 {
		if len(ns) == 0 {
			return nil
		}
		out := make([]int32, 0, len(ns))
		for _, n := range ns {
			out = append(out, g.index[n])
		}
		sort.Slice(out, func(i, j int) bool { return g.asns[out[i]] < g.asns[out[j]] })
		return out
	}
	for i, a := range ases {
		g.providers[i] = conv(t.Providers(a.ASN))
		g.customers[i] = conv(t.Customers(a.ASN))
		g.peers[i] = conv(t.Peers(a.ASN))
	}
	return g
}

// Tree is the routing state toward one destination AS: for every AS, the
// best valley-free route (class, AS-hop distance, next hop), held in dense
// slices keyed by the contiguous AS index. A Tree is immutable once built
// and safe for concurrent reads.
type Tree struct {
	dst    ASN
	dstIdx int32 // -1 when dst is not in the topology
	g      *denseGraph
	// per class: distance and next hop (as AS index) toward dst; -1 = none.
	dist [3][]int32
	next [3][]int32
}

// Router computes and caches routing trees over a topology. Cache hits are
// lock-free sync.Map reads; each tree is computed at most once (misses
// singleflight through a per-destination sync.Once).
type Router struct {
	topo  *topology.Topology
	dense *denseGraph

	trees     sync.Map // ASN -> *treeEntry
	linkCache sync.Map // linkCacheKey -> *topology.Interconnect
}

// treeEntry singleflights one destination's computation.
type treeEntry struct {
	once sync.Once
	tree *Tree
}

type linkCacheKey struct {
	region   string
	neighbor ASN
	anchor   string
}

// NewRouter creates a router for the given topology.
func NewRouter(t *topology.Topology) *Router {
	return &Router{topo: t, dense: buildDense(t)}
}

// TreeTo returns the (cached) routing tree toward dst.
func (r *Router) TreeTo(dst ASN) *Tree {
	if e, ok := r.trees.Load(dst); ok {
		obsTreeHits.Inc()
		en := e.(*treeEntry)
		en.once.Do(func() { obsTreeFills.Inc(); en.tree = r.compute(dst) })
		return en.tree
	}
	obsTreeMisses.Inc()
	e, _ := r.trees.LoadOrStore(dst, new(treeEntry))
	en := e.(*treeEntry)
	en.once.Do(func() { obsTreeFills.Inc(); en.tree = r.compute(dst) })
	return en.tree
}

// Warm bulk-precomputes the routing trees toward every destination in dsts,
// at most parallelism computations in flight. A campaign calls this once at
// start so steady-state measurement never waits on a tree build. Warming is
// purely a cache fill: it changes no routing decision.
func (r *Router) Warm(dsts []ASN, parallelism int) {
	if parallelism < 1 {
		parallelism = 1
	}
	start := time.Now()
	defer func() { obsWarmDur.Observe(float64(time.Since(start))) }()
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, dst := range dsts {
		wg.Add(1)
		sem <- struct{}{}
		go func(dst ASN) {
			defer wg.Done()
			defer func() { <-sem }()
			r.TreeTo(dst)
		}(dst)
	}
	wg.Wait()
}

// compute runs the three-phase Gao-Rexford propagation toward dst over the
// dense graph.
func (r *Router) compute(dst ASN) *Tree {
	g := r.dense
	tr := &Tree{dst: dst, dstIdx: -1, g: g}
	di, ok := g.index[dst]
	if !ok {
		return tr // unknown destination: no AS has a route
	}
	tr.dstIdx = di
	// One backing array for the six per-class slices.
	backing := make([]int32, 6*g.n)
	for i := range backing {
		backing[i] = -1
	}
	for c := 0; c < 3; c++ {
		tr.dist[c] = backing[(2*c+0)*g.n : (2*c+1)*g.n]
		tr.next[c] = backing[(2*c+1)*g.n : (2*c+2)*g.n]
	}
	dist, next := &tr.dist, &tr.next

	// Phase 1: customer routes. An AS has a customer route if dst sits in
	// its customer cone. BFS from dst following customer->provider edges.
	type qe struct {
		idx  int32
		dist int32
	}
	queue := []qe{{di, 0}}
	dist[classCustomer][di] = 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[classCustomer][cur.idx] != cur.dist {
			continue // superseded
		}
		curASN := g.asns[cur.idx]
		for _, p := range g.providers[cur.idx] {
			nd := cur.dist + 1
			d := dist[classCustomer][p]
			if d < 0 || nd < d ||
				(nd == d && curASN < g.asns[next[classCustomer][p]]) {
				if d < 0 || nd < d {
					queue = append(queue, qe{p, nd})
				}
				dist[classCustomer][p] = nd
				next[classCustomer][p] = cur.idx
			}
		}
	}

	// Phase 2: peer routes. One peer edge, then a customer route. The
	// result is a pure (distance, lowest-ASN) minimum over candidates, so
	// scanning in index order converges to the same routes as any order.
	for i := int32(0); i < int32(g.n); i++ {
		d := dist[classCustomer][i]
		if d < 0 {
			continue
		}
		iASN := g.asns[i]
		for _, p := range g.peers[i] {
			nd := d + 1
			cur := dist[classPeer][p]
			if cur < 0 || nd < cur ||
				(nd == cur && iASN < g.asns[next[classPeer][p]]) {
				dist[classPeer][p] = nd
				next[classPeer][p] = i
			}
		}
	}

	// Phase 3: provider routes. An AS learns from each provider that
	// provider's best exportable route. Process by increasing distance
	// (unit weights -> bucketed BFS).
	best := func(i int32) (int32, bool) {
		if d := dist[classCustomer][i]; d >= 0 {
			return d, true
		}
		if d := dist[classPeer][i]; d >= 0 {
			return d, true
		}
		if d := dist[classProvider][i]; d >= 0 {
			return d, true
		}
		return 0, false
	}
	// Seed buckets with every AS that already has a route.
	buckets := make([][]int32, 1)
	push := func(d int32, i int32) {
		for len(buckets) <= int(d) {
			buckets = append(buckets, nil)
		}
		buckets[d] = append(buckets[d], i)
	}
	for i := int32(0); i < int32(g.n); i++ {
		if d, ok := best(i); ok {
			push(d, i)
		}
	}
	for d := int32(0); int(d) < len(buckets); d++ {
		// Sort for deterministic tie-breaking.
		bs := buckets[d]
		sort.Slice(bs, func(i, j int) bool { return g.asns[bs[i]] < g.asns[bs[j]] })
		for _, u := range bs {
			bd, ok := best(u)
			if !ok || bd != d {
				continue // superseded by a better route
			}
			uASN := g.asns[u]
			for _, c := range g.customers[u] {
				// Customer/peer routes always beat provider routes;
				// never overwrite them.
				if dist[classCustomer][c] >= 0 {
					continue
				}
				if dist[classPeer][c] >= 0 {
					continue
				}
				nd := d + 1
				cur := dist[classProvider][c]
				if cur < 0 || nd < cur ||
					(nd == cur && uASN < g.asns[next[classProvider][c]]) {
					if cur < 0 || nd < cur {
						push(nd, c)
					}
					dist[classProvider][c] = nd
					next[classProvider][c] = u
				}
			}
		}
	}
	return tr
}

// Path returns the AS path from src to the tree's destination, inclusive of
// both endpoints. ok is false when src has no valley-free route.
func (tr *Tree) Path(src ASN) ([]ASN, bool) {
	if src == tr.dst {
		return []ASN{src}, true
	}
	if tr.dstIdx < 0 {
		return nil, false
	}
	si, ok := tr.g.index[src]
	if !ok {
		return nil, false
	}
	var path []ASN
	cur := si
	// After the first peer or provider edge the remaining path must
	// descend through customer routes (valley-free); the stored per-class
	// next hops encode exactly that.
	for cur != tr.dstIdx {
		path = append(path, tr.g.asns[cur])
		if len(path) > 64 {
			return nil, false // defensive: malformed state
		}
		var next int32
		if tr.dist[classCustomer][cur] >= 0 {
			next = tr.next[classCustomer][cur]
		} else if tr.dist[classPeer][cur] >= 0 {
			next = tr.next[classPeer][cur]
		} else if tr.dist[classProvider][cur] >= 0 {
			next = tr.next[classProvider][cur]
		} else {
			return nil, false
		}
		cur = next
	}
	return append(path, tr.dst), true
}

// Dist returns the AS-hop distance from src to the destination and whether a
// route exists.
func (tr *Tree) Dist(src ASN) (int, bool) {
	if src == tr.dst {
		return 0, true
	}
	if tr.dstIdx < 0 {
		return 0, false
	}
	si, ok := tr.g.index[src]
	if !ok {
		return 0, false
	}
	for c := 0; c < 3; c++ {
		if d := tr.dist[c][si]; d >= 0 {
			return int(d), true
		}
	}
	return 0, false
}

// Path returns the AS path from src to dst.
func (r *Router) Path(src, dst ASN) ([]ASN, bool) {
	return r.TreeTo(dst).Path(src)
}

// ASPathLen returns the number of AS hops (path length - 1) between src and
// dst, or -1 when unreachable.
func (r *Router) ASPathLen(src, dst ASN) int {
	if d, ok := r.TreeTo(dst).Dist(src); ok {
		return d
	}
	return -1
}

// EgressChoice describes the cloud-side routing decision for one flow.
type EgressChoice struct {
	Link *topology.Interconnect // interconnect crossed
	Path []ASN                  // AS path cloud -> destination (inclusive)
}

// EgressLink selects the interconnect for traffic from a region to a
// destination AS located at dstCity, under the given tier policy.
func (r *Router) EgressLink(region string, dstASN ASN, dstCity string, tier Tier) (EgressChoice, error) {
	t := r.topo
	path, ok := r.Path(t.Cloud.ASN, dstASN)
	if !ok || len(path) < 2 {
		return EgressChoice{}, fmt.Errorf("bgp: no route from cloud to AS%d", dstASN)
	}
	neighbor := path[1]
	anchorCity := dstCity
	if tier == Standard {
		reg, ok := t.Region(region)
		if !ok {
			return EgressChoice{}, fmt.Errorf("bgp: unknown region %q", region)
		}
		anchorCity = reg.City
	}
	link, err := r.nearestVisibleLink(region, neighbor, anchorCity)
	if err != nil {
		return EgressChoice{}, err
	}
	return EgressChoice{Link: link, Path: path}, nil
}

// IngressLink selects the interconnect where traffic from srcASN (at
// srcCity) enters the cloud on its way to a region, under the given tier.
func (r *Router) IngressLink(region string, srcASN ASN, srcCity string, tier Tier) (EgressChoice, error) {
	t := r.topo
	path, ok := r.Path(srcASN, t.Cloud.ASN)
	if !ok || len(path) < 2 {
		return EgressChoice{}, fmt.Errorf("bgp: no route from AS%d to cloud", srcASN)
	}
	neighbor := path[len(path)-2]
	anchorCity := srcCity
	if tier == Standard {
		reg, ok := t.Region(region)
		if !ok {
			return EgressChoice{}, fmt.Errorf("bgp: unknown region %q", region)
		}
		anchorCity = reg.City
	}
	link, err := r.nearestVisibleLink(region, neighbor, anchorCity)
	if err != nil {
		return EgressChoice{}, err
	}
	return EgressChoice{Link: link, Path: path}, nil
}

// nearestVisibleLink picks the region-visible link with the given neighbor
// whose facility is closest to anchorCity, breaking ties by lowest link ID.
// Choices are cached lock-free: the decision is a pure function of its
// inputs, so a racing duplicate computation stores an identical value.
func (r *Router) nearestVisibleLink(region string, neighbor ASN, anchorCity string) (*topology.Interconnect, error) {
	key := linkCacheKey{region: region, neighbor: neighbor, anchor: anchorCity}
	if l, ok := r.linkCache.Load(key); ok {
		obsLinkHits.Inc()
		return l.(*topology.Interconnect), nil
	}
	obsLinkMisses.Inc()
	t := r.topo
	anchor, ok := t.CityCoord(anchorCity)
	if !ok {
		return nil, fmt.Errorf("bgp: unknown city %q", anchorCity)
	}
	var best *topology.Interconnect
	bestD := 0.0
	for _, l := range t.LinksOf(neighbor) {
		if !t.IsVisible(region, l.ID) {
			continue
		}
		if !l.CoordOK {
			continue
		}
		d := geo.DistanceKm(anchor, l.Coord)
		if best == nil || d < bestD || (d == bestD && l.ID < best.ID) {
			best, bestD = l, d
		}
	}
	if best == nil {
		return nil, fmt.Errorf("bgp: neighbor AS%d has no visible link in %s", neighbor, region)
	}
	r.linkCache.Store(key, best)
	return best, nil
}

// EgressForProbe resolves the interconnect for a pilot probe target, which
// is engineered onto a specific link. Falls back to EgressLink when the
// address has no engineered link or that link is not visible from region.
func (r *Router) EgressForProbe(region string, probe *ProbeDest) (EgressChoice, error) {
	t := r.topo
	if probe.LinkID >= 0 && t.IsVisible(region, probe.LinkID) {
		link := t.Link(probe.LinkID)
		path, ok := r.Path(t.Cloud.ASN, probe.ASN)
		if ok {
			// Respect the engineered link even when the default
			// best path would pick a different neighbor.
			if len(path) < 2 || path[1] != link.Neighbor {
				path = []ASN{t.Cloud.ASN, link.Neighbor, probe.ASN}
				if link.Neighbor == probe.ASN {
					path = path[:2]
				}
			}
			return EgressChoice{Link: link, Path: path}, nil
		}
	}
	return r.EgressLink(region, probe.ASN, probe.City, Premium)
}

// ProbeDest is a pilot-scan destination: an address engineered through a
// known link.
type ProbeDest struct {
	ASN    ASN
	City   string
	LinkID int // -1 when not engineered
}
