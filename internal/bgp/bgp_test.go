package bgp

import (
	"testing"

	"github.com/clasp-measurement/clasp/internal/geo"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestEveryASReachesCloud(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	tr := r.TreeTo(topo.Cloud.ASN)
	for _, a := range topo.ASes() {
		path, ok := tr.Path(a.ASN)
		if !ok {
			t.Errorf("AS%d (%s) cannot reach the cloud", a.ASN, a.Name)
			continue
		}
		if path[0] != a.ASN || path[len(path)-1] != topo.Cloud.ASN {
			t.Errorf("path endpoints wrong: %v", path)
		}
	}
}

func TestCloudReachesEveryAS(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	for _, a := range topo.ASes() {
		if _, ok := r.Path(topo.Cloud.ASN, a.ASN); !ok {
			t.Errorf("cloud cannot reach AS%d (%s, %v)", a.ASN, a.Name, a.Type)
		}
	}
}

// valleyFree checks Gao-Rexford validity for a path: once the path stops
// climbing (customer->provider) it may take at most one peer edge and must
// then only descend (provider->customer).
func valleyFree(t *testing.T, topo *topology.Topology, path []ASN) bool {
	t.Helper()
	rel := func(a, b ASN) string {
		for _, p := range topo.Providers(a) {
			if p == b {
				return "up" // a -> its provider
			}
		}
		for _, c := range topo.Customers(a) {
			if c == b {
				return "down"
			}
		}
		for _, p := range topo.Peers(a) {
			if p == b {
				return "peer"
			}
		}
		return "none"
	}
	// Phases: 0 = climbing, 1 = after peer, 2 = descending.
	phase := 0
	for i := 0; i+1 < len(path); i++ {
		switch rel(path[i], path[i+1]) {
		case "up":
			if phase != 0 {
				return false
			}
		case "peer":
			if phase != 0 {
				return false
			}
			phase = 1
		case "down":
			phase = 2
		default:
			return false
		}
	}
	return true
}

func TestPathsAreValleyFree(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	tr := r.TreeTo(topo.Cloud.ASN)
	for _, a := range topo.ASes() {
		path, ok := tr.Path(a.ASN)
		if !ok {
			continue
		}
		if !valleyFree(t, topo, path) {
			t.Errorf("path from AS%d not valley-free: %v", a.ASN, path)
		}
		// No loops.
		seen := make(map[ASN]bool)
		for _, h := range path {
			if seen[h] {
				t.Errorf("loop in path from AS%d: %v", a.ASN, path)
				break
			}
			seen[h] = true
		}
	}
}

func TestPathsToServersValleyFree(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	for _, s := range topo.Servers() {
		path, ok := r.Path(topo.Cloud.ASN, s.ASN)
		if !ok {
			t.Errorf("no path to server %d AS%d", s.ID, s.ASN)
			continue
		}
		if !valleyFree(t, topo, path) {
			t.Errorf("path to server AS%d not valley-free: %v", s.ASN, path)
		}
	}
}

func TestDirectPeerPathLength(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	// Cox directly peers with the cloud: AS path must be exactly 1 hop.
	if n := r.ASPathLen(22773, topo.Cloud.ASN); n != 1 {
		t.Errorf("Cox -> cloud AS hops = %d, want 1", n)
	}
	if n := r.ASPathLen(topo.Cloud.ASN, 22773); n != 1 {
		t.Errorf("cloud -> Cox AS hops = %d, want 1", n)
	}
	// Self distance is zero.
	if n := r.ASPathLen(topo.Cloud.ASN, topo.Cloud.ASN); n != 0 {
		t.Errorf("self distance = %d", n)
	}
}

func TestDistMatchesPathLength(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	tr := r.TreeTo(topo.Cloud.ASN)
	for _, a := range topo.ASes() {
		d, ok := tr.Dist(a.ASN)
		if !ok {
			continue
		}
		path, ok := tr.Path(a.ASN)
		if !ok {
			t.Errorf("Dist exists but Path missing for AS%d", a.ASN)
			continue
		}
		if len(path)-1 != d {
			t.Errorf("AS%d: Dist=%d but path length %d (%v)", a.ASN, d, len(path)-1, path)
		}
	}
}

func TestPathDeterminism(t *testing.T) {
	topo := testTopo(t)
	r1 := NewRouter(topo)
	r2 := NewRouter(topo)
	for _, s := range topo.Servers()[:30] {
		p1, ok1 := r1.Path(s.ASN, topo.Cloud.ASN)
		p2, ok2 := r2.Path(s.ASN, topo.Cloud.ASN)
		if ok1 != ok2 || len(p1) != len(p2) {
			t.Fatalf("nondeterministic path for AS%d", s.ASN)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("nondeterministic path for AS%d: %v vs %v", s.ASN, p1, p2)
			}
		}
	}
}

func TestEgressLinkTierPolicy(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	// Pick a server on the opposite coast from the region so premium and
	// standard anchors differ.
	var east *topology.Server
	for _, s := range topo.Servers() {
		if s.Country == "US" && s.Lon > -85 {
			east = s
			break
		}
	}
	if east == nil {
		t.Skip("no east-coast server in small topology")
	}
	prem, err := r.EgressLink("us-west1", east.ASN, east.City, Premium)
	if err != nil {
		t.Fatal(err)
	}
	std, err := r.EgressLink("us-west1", east.ASN, east.City, Standard)
	if err != nil {
		t.Fatal(err)
	}
	if prem.Link.Neighbor != std.Link.Neighbor {
		t.Errorf("tiers picked different neighbors: %d vs %d", prem.Link.Neighbor, std.Link.Neighbor)
	}
	// Premium link should be at least as close to the destination as the
	// standard one; standard at least as close to the region.
	dst, _ := topo.CityCoord(east.City)
	reg, _ := topo.CityCoord("The Dalles")
	pc, _ := topo.CityCoord(prem.Link.City)
	sc, _ := topo.CityCoord(std.Link.City)
	if distKm(pc, dst) > distKm(sc, dst)+1 {
		t.Errorf("premium egress (%s) farther from destination than standard (%s)", prem.Link.City, std.Link.City)
	}
	if distKm(sc, reg) > distKm(pc, reg)+1 {
		t.Errorf("standard egress (%s) farther from region than premium (%s)", std.Link.City, prem.Link.City)
	}
	// Both links must be visible from the region.
	if !topo.IsVisible("us-west1", prem.Link.ID) || !topo.IsVisible("us-west1", std.Link.ID) {
		t.Error("selected link not visible from region")
	}
}

func distKm(a, b geo.Coord) float64 { return geo.DistanceKm(a, b) }

func TestIngressLinkTierPolicy(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	var srv *topology.Server
	for _, s := range topo.Servers() {
		if s.ASN == 22773 && s.City == "Las Vegas" {
			srv = s
			break
		}
	}
	if srv == nil {
		t.Fatal("Cox Las Vegas server missing")
	}
	prem, err := r.IngressLink("us-east1", srv.ASN, srv.City, Premium)
	if err != nil {
		t.Fatal(err)
	}
	std, err := r.IngressLink("us-east1", srv.ASN, srv.City, Standard)
	if err != nil {
		t.Fatal(err)
	}
	// Cox peers directly: the ingress neighbor must be Cox itself.
	if prem.Link.Neighbor != 22773 || std.Link.Neighbor != 22773 {
		t.Errorf("ingress neighbors = %d/%d, want Cox 22773", prem.Link.Neighbor, std.Link.Neighbor)
	}
	// Path ends at the cloud.
	if prem.Path[len(prem.Path)-1] != topo.Cloud.ASN {
		t.Errorf("ingress path does not end at cloud: %v", prem.Path)
	}
}

func TestEgressErrors(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	if _, err := r.EgressLink("nonexistent-region", 22773, "Las Vegas", Standard); err == nil {
		t.Error("unknown region: want error")
	}
	if _, err := r.EgressLink("us-west1", 4294967295, "Las Vegas", Premium); err == nil {
		t.Error("unknown AS: want error")
	}
	if _, err := r.EgressLink("us-west1", 22773, "Nowhere", Premium); err == nil {
		t.Error("unknown city: want error")
	}
}

func TestEgressForProbe(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	region := "us-west1"
	hit := 0
	for _, l := range topo.VisibleLinks(region)[:50] {
		nb := topo.AS(l.Neighbor)
		choice, err := r.EgressForProbe(region, &ProbeDest{ASN: l.Neighbor, City: nb.Cities[0], LinkID: l.ID})
		if err != nil {
			t.Fatalf("probe to link %d: %v", l.ID, err)
		}
		if choice.Link.ID == l.ID {
			hit++
		}
	}
	if hit < 45 {
		t.Errorf("engineered probes hit their link only %d/50 times", hit)
	}
	// Fallback for non-engineered destination.
	srv := topo.Servers()[0]
	if _, err := r.EgressForProbe(region, &ProbeDest{ASN: srv.ASN, City: srv.City, LinkID: -1}); err != nil {
		t.Errorf("fallback probe: %v", err)
	}
}

func TestTierString(t *testing.T) {
	if Premium.String() != "premium" || Standard.String() != "standard" {
		t.Error("Tier.String broken")
	}
}
