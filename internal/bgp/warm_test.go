package bgp

import (
	"sync"
	"testing"
)

// TestWarmMatchesLazy asserts that Warm is a pure cache fill: every path a
// warmed router serves is identical to what a lazily-populated router
// computes for the same destination set.
func TestWarmMatchesLazy(t *testing.T) {
	topo := testTopo(t)
	lazy := NewRouter(topo)
	warmed := NewRouter(topo)

	var dsts []ASN
	for _, srv := range topo.Servers() {
		dsts = append(dsts, srv.ASN)
	}
	dsts = append(dsts, topo.Cloud.ASN)
	warmed.Warm(dsts, 8)

	cloud := topo.Cloud.ASN
	for _, srv := range topo.Servers() {
		lp, lok := lazy.Path(cloud, srv.ASN)
		wp, wok := warmed.Path(cloud, srv.ASN)
		if lok != wok || len(lp) != len(wp) {
			t.Fatalf("AS%d: warm path differs: lazy %v (%v) vs warm %v (%v)", srv.ASN, lp, lok, wp, wok)
		}
		for i := range lp {
			if lp[i] != wp[i] {
				t.Fatalf("AS%d: warm path differs at hop %d: %v vs %v", srv.ASN, i, lp, wp)
			}
		}
		rl, rlok := lazy.Path(srv.ASN, cloud)
		rw, rwok := warmed.Path(srv.ASN, cloud)
		if rlok != rwok || len(rl) != len(rw) {
			t.Fatalf("AS%d: reverse warm path differs", srv.ASN)
		}
		for i := range rl {
			if rl[i] != rw[i] {
				t.Fatalf("AS%d: reverse warm path differs at hop %d", srv.ASN, i)
			}
		}
	}
}

// TestConcurrentTreeToAndWarm hammers a cold router with concurrent TreeTo
// and Warm calls over overlapping destinations; run under -race this pins
// the lock-free cache. All goroutines must observe the same tree pointer
// per destination (each tree is computed exactly once).
func TestConcurrentTreeToAndWarm(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)

	servers := topo.Servers()
	if len(servers) > 16 {
		servers = servers[:16]
	}
	dsts := []ASN{topo.Cloud.ASN}
	for _, srv := range servers {
		dsts = append(dsts, srv.ASN)
	}

	const goroutines = 8
	got := make([][]*Tree, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			if gi%2 == 0 {
				r.Warm(dsts, 4)
			}
			trees := make([]*Tree, len(dsts))
			for i, d := range dsts {
				trees[i] = r.TreeTo(d)
			}
			got[gi] = trees
		}(gi)
	}
	wg.Wait()

	for gi := 1; gi < goroutines; gi++ {
		for i := range dsts {
			if got[gi][i] != got[0][i] {
				t.Fatalf("goroutine %d saw a different tree for AS%d", gi, dsts[i])
			}
		}
	}
}

// TestTreeUnknownDestination pins the dense tree's behaviour for a
// destination outside the topology.
func TestTreeUnknownDestination(t *testing.T) {
	topo := testTopo(t)
	r := NewRouter(topo)
	const bogus = ASN(4200000000)
	if _, ok := r.Path(topo.Cloud.ASN, bogus); ok {
		t.Fatal("expected no path to an unknown ASN")
	}
	if p, ok := r.Path(bogus, bogus); !ok || len(p) != 1 {
		t.Fatalf("src==dst must short-circuit even when unknown, got %v %v", p, ok)
	}
	if d := r.ASPathLen(topo.Cloud.ASN, bogus); d != -1 {
		t.Fatalf("ASPathLen to unknown ASN = %d, want -1", d)
	}
}
