package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/selection"
	"github.com/clasp-measurement/clasp/internal/stats"
	"github.com/clasp-measurement/clasp/internal/topology"
)

func TestWriteTable1(t *testing.T) {
	var buf bytes.Buffer
	WriteTable1(&buf, []Table1Row{
		{Region: "us-west1", PilotLinks: 6132, ServerLinks: 434, Measured: 106, CoveragePct: 24.4, SharedPct: 84.6},
	})
	out := buf.String()
	for _, want := range []string{"us-west1", "6132", "434", "106", "24.4%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFig2(t *testing.T) {
	var buf bytes.Buffer
	WriteFig2(&buf, []Fig2Series{{
		Region: "us-east1",
		ElbowH: 0.45,
		Days:   []congestion.SweepPoint{{H: 0.25, Fraction: 0.8}, {H: 0.5, Fraction: 0.2}},
		Hours:  []congestion.SweepPoint{{H: 0.25, Fraction: 0.1}, {H: 0.5, Fraction: 0.02}},
	}})
	out := buf.String()
	if !strings.Contains(out, "us-east1") || !strings.Contains(out, "0.45") {
		t.Errorf("fig2 rendering:\n%s", out)
	}
	if !strings.Contains(out, "80.0%") || !strings.Contains(out, "2.00%") {
		t.Errorf("fig2 fractions missing:\n%s", out)
	}
}

func TestWriteFig3MarksEvents(t *testing.T) {
	t0 := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	d := &Fig3Data{
		PairID: "pair",
		Samples: []congestion.Sample{
			{Time: t0, Mbps: 400},
			{Time: t0.Add(time.Hour), Mbps: 50},
		},
		VH:     []float64{0, 0.875},
		Events: []congestion.Event{{Time: t0.Add(time.Hour), Mbps: 50, VH: 0.875}},
	}
	var buf bytes.Buffer
	WriteFig3(&buf, d)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, "*") {
		t.Errorf("congested hour not starred: %q", last)
	}
	if strings.HasSuffix(lines[len(lines)-2], "*") {
		t.Errorf("clean hour starred: %q", lines[len(lines)-2])
	}
}

func TestWriteFig4(t *testing.T) {
	var buf bytes.Buffer
	WriteFig4(&buf, &Fig4Data{
		Region: "us-west1", Tier: bgp.Premium,
		Points: []analysis.PerfPoint{{ServerID: 3, Month: time.May, P95Down: 312.5, P5LatMs: 41.2, N: 700}},
	})
	out := buf.String()
	if !strings.Contains(out, "312.5") || !strings.Contains(out, "41.2") || !strings.Contains(out, "May") {
		t.Errorf("fig4 rendering:\n%s", out)
	}
}

func TestWriteFig5AndQuantile(t *testing.T) {
	cdf := []stats.CDFPoint{{X: -0.4, P: 0.25}, {X: -0.1, P: 0.5}, {X: 0.2, P: 1}}
	if q := quantileOfCDF(cdf, 0.5); q != -0.1 {
		t.Errorf("quantile = %v", q)
	}
	if q := quantileOfCDF(cdf, 0.99); q != 0.2 {
		t.Errorf("tail quantile = %v", q)
	}
	if q := quantileOfCDF(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	var buf bytes.Buffer
	WriteFig5(&buf, &Fig5Summary{
		Region:            "europe-west1",
		StdHigherDownload: 0.8,
		Within50:          0.9,
		Curves:            []Fig5Curve{{Metric: analysis.MetricDownload, Class: selection.Comparable, CDF: cdf, N: 3}},
	})
	out := buf.String()
	if !strings.Contains(out, "80.0%") || !strings.Contains(out, "comparable") {
		t.Errorf("fig5 rendering:\n%s", out)
	}
}

func TestWriteFig6(t *testing.T) {
	var probs [24]float64
	probs[21] = 0.12
	var buf bytes.Buffer
	WriteFig6(&buf, "us-west1", []Fig6Line{{Label: "<Las Vegas><Cox AS22773>", Tier: bgp.Premium, Events: 40, Probs: probs}})
	out := buf.String()
	if !strings.Contains(out, "Cox") || !strings.Contains(out, "0.12") {
		t.Errorf("fig6 rendering:\n%s", out)
	}
}

func TestWriteFig7AndFig8(t *testing.T) {
	var buf bytes.Buffer
	WriteFig7(&buf, []Fig7Point{{Region: "us-west1", Kind: "region", Label: "The Dalles", Lat: 45.59, Lon: -121.18}})
	if !strings.Contains(buf.String(), "The Dalles") {
		t.Errorf("fig7 rendering:\n%s", buf.String())
	}
	buf.Reset()
	WriteFig8(&buf, "us-east1", []analysis.Fig8Row{{Region: "us-east1", Type: topology.BizISP, Congested: 5, Total: 10}})
	if !strings.Contains(buf.String(), "ISP") || !strings.Contains(buf.String(), "5 congested") {
		t.Errorf("fig8 rendering:\n%s", buf.String())
	}
}

func TestWriteHeadlinesAndSeparator(t *testing.T) {
	var buf bytes.Buffer
	WriteHeadlines(&buf, Headlines{
		CongestedHourFrac: 0.02, CongestedISPFrac: 0.5,
		P95DownIn200600: 0.8, StdTierHigherFrac: 0.7,
	})
	out := buf.String()
	if !strings.Contains(out, "2.00%") || !strings.Contains(out, "50.0%") {
		t.Errorf("headlines rendering:\n%s", out)
	}
	buf.Reset()
	Separator(&buf, "fig2")
	if !strings.Contains(buf.String(), "====") {
		t.Errorf("separator rendering:\n%s", buf.String())
	}
}
