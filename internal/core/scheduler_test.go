package core

import (
	"reflect"
	"testing"

	"github.com/clasp-measurement/clasp/internal/checkpoint"
)

// TestSchedulerResumeSkipsFinished is the command-resume invariant at the
// core layer: a campaign run to completion under a command scheduler with
// checkpointing on is, on resume, recognized as finished at Plan time
// (OnSkip fires), and Run rebuilds its result from the recorded stream —
// records bit-identical to the original run, no re-measurement.
func TestSchedulerResumeSkipsFinished(t *testing.T) {
	const region, days = "us-west1", 1
	ckDir := t.TempDir()
	ref := CampaignRef{Kind: "topology", Region: region, Days: days}

	first, err := New(Options{Seed: 3, Scale: 0.1, CheckpointDir: ckDir})
	if err != nil {
		t.Fatal(err)
	}
	s1 := first.NewCommandScheduler("costs")
	if err := s1.WriteManifest("costs", "", []CampaignRef{ref}); err != nil {
		t.Fatal(err)
	}
	p1, err := s1.Plan(ref)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s1.Run(p1)
	if err != nil {
		t.Fatal(err)
	}

	man, err := checkpoint.LoadManifest(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Command != "costs" || len(man.Campaigns) != 1 {
		t.Fatalf("manifest after run = %+v, want a costs manifest with one campaign", man)
	}

	second, err := New(Options{Seed: 3, Scale: 0.1, CheckpointDir: ckDir})
	if err != nil {
		t.Fatal(err)
	}
	s2 := second.NewResumeScheduler("costs")
	var skipped []string
	s2.OnSkip = func(camp checkpoint.Campaign) {
		skipped = append(skipped, checkpoint.CampaignDir(camp))
	}
	p2, err := s2.Plan(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.finished {
		t.Fatal("resume Plan did not mark the completed campaign finished")
	}
	if len(skipped) != 1 || skipped[0] != region+"-topology" {
		t.Fatalf("OnSkip fired for %v, want exactly [%s-topology]", skipped, region)
	}
	got, err := s2.Run(p2)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Errorf("loaded campaign records differ from the original run (%d vs %d records)",
			len(got.Records), len(want.Records))
	}
	if got.Report.Tests != want.Report.Tests || got.Report.Hours != want.Report.Hours || got.Report.VMs != want.Report.VMs {
		t.Errorf("loaded report %+v differs from original %+v", got.Report, want.Report)
	}
	// The resumed engine must re-accrue every cost component — egress per
	// replayed record plus both compute accruals (per-hour and VM
	// teardown) — or a resumed `costs` under-reports the bill.
	if gc, wc := second.Cloud.Costs(), first.Cloud.Costs(); gc != wc {
		t.Errorf("loaded campaign costs %+v differ from original %+v", gc, wc)
	}
}

// TestSchedulerResumeIdentityMismatch: a resume scheduler must refuse a
// checkpoint written under a different engine seed rather than splice
// foreign records into the command.
func TestSchedulerResumeIdentityMismatch(t *testing.T) {
	const region, days = "us-west1", 1
	ckDir := t.TempDir()
	ref := CampaignRef{Kind: "topology", Region: region, Days: days}

	first, err := New(Options{Seed: 3, Scale: 0.1, CheckpointDir: ckDir})
	if err != nil {
		t.Fatal(err)
	}
	s1 := first.NewCommandScheduler("costs")
	if p, err := s1.Plan(ref); err != nil {
		t.Fatal(err)
	} else if _, err := s1.Run(p); err != nil {
		t.Fatal(err)
	}

	other, err := New(Options{Seed: 4, Scale: 0.1, CheckpointDir: ckDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.NewResumeScheduler("costs").Plan(ref); err == nil {
		t.Fatal("resume Plan accepted a checkpoint from a different seed")
	}
}

// TestPlanRefUnknownKind pins the error for a malformed manifest entry.
func TestPlanRefUnknownKind(t *testing.T) {
	c, err := New(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlanRef(CampaignRef{Kind: "bogus", Region: "us-west1", Days: 1}); err == nil {
		t.Fatal("PlanRef accepted an unknown campaign kind")
	}
}
