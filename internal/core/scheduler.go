package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/checkpoint"
	"github.com/clasp-measurement/clasp/internal/killpoint"
	"github.com/clasp-measurement/clasp/internal/obs"
	"github.com/clasp-measurement/clasp/internal/selection"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// CampaignRef names one campaign of a multi-campaign command before any
// selection has run: enough to derive its checkpoint identity, and
// therefore enough to write the command manifest up front.
type CampaignRef struct {
	Kind       string // "topology" or "differential"
	Region     string
	Days       int
	MinSamples int // differential only
}

// PlannedCampaign is a campaign after its (sequential) planning phase:
// selection done, checkpoint state attached. RunPlanned executes the
// measurement — the part that is safe to run concurrently with other
// planned campaigns.
type PlannedCampaign struct {
	Camp    checkpoint.Campaign
	Servers []*topology.Server
	Tiers   []bgp.Tier
	// TopoSel / DiffSel hold the selection the campaign was planned from
	// (one of the two, by Kind).
	TopoSel *selection.TopoResult
	DiffSel []selection.DiffSelected

	// ck is a checkpoint found for this campaign when planning a resume;
	// finished marks it complete (watermark at Days*24), in which case
	// RunPlanned has zero rounds left to execute and the CLI reports the
	// campaign as skipped.
	ck       *checkpoint.Checkpoint
	finished bool
}

// PlanTopologyCampaign runs the topology selection for a region and
// returns the campaign ready to execute.
func (c *CLASP) PlanTopologyCampaign(region string, days int) (*PlannedCampaign, error) {
	sel, err := c.SelectTopologyServers(region)
	if err != nil {
		return nil, fmt.Errorf("core: topology selection in %s: %w", region, err)
	}
	servers := make([]*topology.Server, 0, len(sel.Selected))
	for _, s := range sel.Selected {
		servers = append(servers, s.Server)
	}
	return &PlannedCampaign{
		Camp:    c.campaignIdentity("topology", region, days, 0),
		Servers: servers,
		Tiers:   []bgp.Tier{bgp.Premium},
		TopoSel: sel,
	}, nil
}

// PlanDifferentialCampaign runs the differential selection for a region
// and returns the two-tier campaign ready to execute.
func (c *CLASP) PlanDifferentialCampaign(region string, days, minSamples int) (*PlannedCampaign, error) {
	sel, _, err := c.SelectDifferentialServers(region, minSamples)
	if err != nil {
		return nil, fmt.Errorf("core: differential selection in %s: %w", region, err)
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("core: differential selection in %s found no servers", region)
	}
	servers := make([]*topology.Server, 0, len(sel))
	for _, s := range sel {
		servers = append(servers, s.Server)
	}
	return &PlannedCampaign{
		Camp:    c.campaignIdentity("differential", region, days, minSamples),
		Servers: servers,
		Tiers:   []bgp.Tier{bgp.Premium, bgp.Standard},
		DiffSel: sel,
	}, nil
}

// PlanRef plans a campaign from its reference.
func (c *CLASP) PlanRef(ref CampaignRef) (*PlannedCampaign, error) {
	switch ref.Kind {
	case "topology":
		return c.PlanTopologyCampaign(ref.Region, ref.Days)
	case "differential":
		return c.PlanDifferentialCampaign(ref.Region, ref.Days, ref.MinSamples)
	default:
		return nil, fmt.Errorf("core: unknown campaign kind %q", ref.Kind)
	}
}

// RunPlanned executes a planned campaign: a fresh run, a resume from a
// partial checkpoint, or — for a checkpoint already at its final watermark
// — a replay-only pass that re-measures nothing. The finished case needs
// no special path: the watermark leaves zero rounds to execute, so the
// run replays the recorded stream through the live sink fan-out and
// re-runs only the deterministic deploy/teardown, which re-accrues every
// compute and egress cost component exactly as the original run did.
// Safe to call concurrently for different planned campaigns; the engine's
// worker pool bounds their combined VM concurrency.
func (c *CLASP) RunPlanned(p *PlannedCampaign) (*CampaignResult, error) {
	return c.runCampaign(p.Camp, p.Servers, p.Tiers, p.ck)
}

// commandMetrics aggregates progress across the concurrently running
// campaigns of one command, published under the command label so /progress
// can report whole-command position and ETA next to the per-region series.
type commandMetrics struct {
	campaignsTotal *obs.Gauge
	campaignsDone  *obs.Gauge
	hoursTotal     *obs.Gauge
	hoursDone      *obs.Gauge
	eta            *obs.Gauge
}

func newCommandMetrics(name string) *commandMetrics {
	r := obs.Default()
	return &commandMetrics{
		campaignsTotal: r.Gauge("command_campaigns_total", "command", name),
		campaignsDone:  r.Gauge("command_campaigns_done", "command", name),
		hoursTotal:     r.Gauge("command_hours_total", "command", name),
		hoursDone:      r.Gauge("command_hours_done", "command", name),
		eta:            r.Gauge("command_eta_seconds", "command", name),
	}
}

// CommandScheduler coordinates the campaigns of one multi-campaign command
// (report all, costs): it owns the sequential planning phase (selections
// serialize; checkpoints attach on resume), accounts whole-command
// progress across the concurrent campaign runs, writes the command
// manifest, and arms the campaign-done kill point the resume kill-matrix
// uses. One scheduler per engine at a time.
type CommandScheduler struct {
	eng    *CLASP
	name   string
	resume bool

	// OnSkip, when set, is called from the planning phase for each
	// campaign whose checkpoint is already at its final watermark — the
	// CLI prints these so a resume shows what it skipped.
	OnSkip func(checkpoint.Campaign)

	mu            sync.Mutex
	wallStart     time.Time
	hoursTotal    int
	hoursDone     int
	campaignsDone int
	campaigns     int
	m             *commandMetrics
}

// NewCommandScheduler attaches a scheduler for a fresh command run. name
// labels the command's progress series (e.g. "report-all", "costs").
func (c *CLASP) NewCommandScheduler(name string) *CommandScheduler {
	s := &CommandScheduler{eng: c, name: name, wallStart: time.Now(), m: newCommandMetrics(name)}
	c.sched = s
	return s
}

// NewResumeScheduler attaches a scheduler that re-enters a killed command:
// Plan consults each campaign's checkpoint under Opts.CheckpointDir —
// finished campaigns load without re-measuring, partial ones resume from
// their watermark, never-started ones run fresh.
func (c *CLASP) NewResumeScheduler(name string) *CommandScheduler {
	s := c.NewCommandScheduler(name)
	s.resume = true
	return s
}

// WriteManifest commits the command manifest — the command identity plus
// the full planned campaign set — into the engine's checkpoint directory.
// No-op when checkpointing is off. Called before any campaign starts, so a
// kill at any later point leaves a resumable manifest.
func (s *CommandScheduler) WriteManifest(command, artifact string, refs []CampaignRef) error {
	dir := s.eng.Opts.CheckpointDir
	if dir == "" {
		return nil
	}
	o := s.eng.Opts
	man := checkpoint.Manifest{
		Command:         command,
		Artifact:        artifact,
		Seed:            o.Seed,
		Scale:           o.Scale,
		FaultProfile:    o.FaultProfile,
		CaptureEvery:    o.CaptureEvery,
		TracerouteEvery: o.TracerouteEvery,
		Every:           o.CheckpointEvery,
		VMHours:         o.CheckpointVMHours,
	}
	for _, ref := range refs {
		if len(man.Campaigns) == 0 {
			man.Days = ref.Days
			if ref.Kind == "differential" {
				man.MinSamples = ref.MinSamples
			}
		}
		if ref.MinSamples > 0 {
			man.MinSamples = ref.MinSamples
		}
		man.Campaigns = append(man.Campaigns, s.eng.campaignIdentity(ref.Kind, ref.Region, ref.Days, ref.MinSamples))
	}
	return checkpoint.WriteManifest(dir, man)
}

// Plan runs a campaign's sequential planning phase: selection, progress
// registration, and — on resume — checkpoint attachment.
func (s *CommandScheduler) Plan(ref CampaignRef) (*PlannedCampaign, error) {
	p, err := s.eng.PlanRef(ref)
	if err != nil {
		return nil, err
	}
	done := 0
	if s.resume && s.eng.Opts.CheckpointDir != "" {
		ck, err := checkpoint.LoadCampaign(s.eng.Opts.CheckpointDir, p.Camp)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if ck != nil {
			if err := s.eng.checkCampaignIdentity(ck.Meta.Campaign); err != nil {
				return nil, err
			}
			p.ck = ck
			done = ck.Meta.Progress.NextHour
			if done >= ref.Days*24 {
				p.finished = true
				if s.OnSkip != nil {
					s.OnSkip(p.Camp)
				}
			}
		}
	}
	s.mu.Lock()
	s.campaigns++
	s.hoursTotal += ref.Days * 24
	s.hoursDone += done
	s.publishLocked()
	s.mu.Unlock()
	return p, nil
}

// Run executes a planned campaign under the scheduler's accounting and,
// once the campaign completes, arms the campaign-done kill point with the
// command-wide completion count (1-based, in completion order).
func (s *CommandScheduler) Run(p *PlannedCampaign) (*CampaignResult, error) {
	res, err := s.eng.RunPlanned(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.campaignsDone++
	n := s.campaignsDone
	s.publishLocked()
	s.mu.Unlock()
	killpoint.Maybe("campaign-done", n)
	return res, nil
}

// roundDone is the orchestrator's per-round callback: one more hour of the
// command's total is complete.
func (s *CommandScheduler) roundDone(done, total int) {
	s.mu.Lock()
	s.hoursDone++
	s.publishLocked()
	s.mu.Unlock()
}

func (s *CommandScheduler) publishLocked() {
	s.m.campaignsTotal.Set(float64(s.campaigns))
	s.m.campaignsDone.Set(float64(s.campaignsDone))
	s.m.hoursTotal.Set(float64(s.hoursTotal))
	s.m.hoursDone.Set(float64(s.hoursDone))
	if s.hoursDone <= 0 || s.hoursDone >= s.hoursTotal {
		s.m.eta.Set(0)
		return
	}
	elapsed := time.Since(s.wallStart).Seconds()
	s.m.eta.Set(elapsed / float64(s.hoursDone) * float64(s.hoursTotal-s.hoursDone))
}

// checkCampaignIdentity verifies a loaded checkpoint belongs to this
// engine's configuration.
func (c *CLASP) checkCampaignIdentity(camp checkpoint.Campaign) error {
	if c.Opts.Seed != camp.Seed {
		return fmt.Errorf("core: engine seed %d does not match checkpoint seed %d", c.Opts.Seed, camp.Seed)
	}
	if camp.Scale != 0 && c.Opts.Scale != camp.Scale {
		return fmt.Errorf("core: engine scale %v does not match checkpoint scale %v", c.Opts.Scale, camp.Scale)
	}
	if normalizeProfile(c.Opts.FaultProfile) != normalizeProfile(camp.FaultProfile) {
		return fmt.Errorf("core: engine fault profile %q does not match checkpoint profile %q", c.Opts.FaultProfile, camp.FaultProfile)
	}
	return nil
}
