package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/selection"
	"github.com/clasp-measurement/clasp/internal/stats"
)

// Rendering helpers: each Write* function prints one paper artifact as
// aligned text, the form consumed by EXPERIMENTS.md and the CLI's `report`
// subcommand.

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: coverage of topology-based server selection\n")
	fmt.Fprintf(w, "%-14s %12s %18s %12s %10s %10s\n",
		"Region", "pilot links", "US-server links", "measured", "coverage", "shared")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12d %18d %12d %9.1f%% %9.1f%%\n",
			r.Region, r.PilotLinks, r.ServerLinks, r.Measured, r.CoveragePct, r.SharedPct)
	}
}

// WriteFig2 renders the Fig. 2a/2b sweeps as one row per threshold.
func WriteFig2(w io.Writer, series []Fig2Series) {
	fmt.Fprintf(w, "Fig 2: fraction of congested pair-days (a) and pair-hours (b) vs threshold H\n")
	for _, s := range series {
		fmt.Fprintf(w, "region %s (elbow H=%.2f)\n", s.Region, s.ElbowH)
		fmt.Fprintf(w, "  %6s %12s %12s\n", "H", "days", "hours")
		for i := range s.Days {
			fmt.Fprintf(w, "  %6.2f %11.1f%% %11.2f%%\n",
				s.Days[i].H, s.Days[i].Fraction*100, s.Hours[i].Fraction*100)
		}
	}
}

// WriteFig3 renders the annotated two-day series.
func WriteFig3(w io.Writer, d *Fig3Data) {
	fmt.Fprintf(w, "Fig 3: two-day download series %s (congested hours marked *)\n", d.PairID)
	fmt.Fprintf(w, "%-18s %10s %8s\n", "time (UTC)", "Mbps", "VH")
	events := make(map[int64]bool, len(d.Events))
	for _, e := range d.Events {
		events[e.Time.Unix()] = true
	}
	for i, s := range d.Samples {
		mark := " "
		if events[s.Time.Unix()] {
			mark = "*"
		}
		fmt.Fprintf(w, "%-18s %10.1f %8.2f %s\n", s.Time.Format("01-02 15:04"), s.Mbps, d.VH[i], mark)
	}
}

// WriteFig4 renders one Fig. 4 panel: scatter points plus KDE summaries.
func WriteFig4(w io.Writer, d *Fig4Data) {
	fmt.Fprintf(w, "Fig 4 (%s, %s tier): p95 download vs p5 latency per server-month\n", d.Region, d.Tier)
	fmt.Fprintf(w, "%-8s %-6s %12s %12s %6s\n", "server", "month", "p95 Mbps", "p5 ms", "n")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-8d %-6s %12.1f %12.1f %6d\n", p.ServerID, p.Month.String()[:3], p.P95Down, p.P5LatMs, p.N)
	}
	var down, lat []float64
	for _, p := range d.Points {
		down = append(down, p.P95Down)
		lat = append(lat, p.P5LatMs)
	}
	dm, _ := stats.Median(down)
	lm, _ := stats.Median(lat)
	fmt.Fprintf(w, "medians: download %.1f Mbps, latency %.1f ms; %d points\n", dm, lm, len(d.Points))
}

// WriteFig5 renders the tier-difference CDFs at decile resolution.
func WriteFig5(w io.Writer, s *Fig5Summary) {
	fmt.Fprintf(w, "Fig 5 (%s): CDFs of relative tier difference (premium - standard)/standard\n", s.Region)
	fmt.Fprintf(w, "standard tier faster in %.1f%% of download pairs; |delta|<0.5 in %.1f%%\n",
		s.StdHigherDownload*100, s.Within50*100)
	for _, c := range s.Curves {
		fmt.Fprintf(w, "  metric=%s class=%s n=%d:", c.Metric, c.Class, c.N)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			fmt.Fprintf(w, "  p%.0f=%+.2f", q*100, quantileOfCDF(c.CDF, q))
		}
		fmt.Fprintln(w)
	}
}

// quantileOfCDF inverts an empirical CDF at probability q.
func quantileOfCDF(cdf []stats.CDFPoint, q float64) float64 {
	for _, p := range cdf {
		if p.P >= q {
			return p.X
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].X
}

// WriteFig6 renders hourly congestion probabilities.
func WriteFig6(w io.Writer, title string, lines []Fig6Line) {
	fmt.Fprintf(w, "Fig 6 (%s): hourly congestion probability, server-local time\n", title)
	for _, l := range lines {
		fmt.Fprintf(w, "%-44s (%s, %d events)\n   ", l.Label, l.Tier, l.Events)
		for h := 0; h < 24; h++ {
			fmt.Fprintf(w, "%4.2f ", l.Probs[h])
		}
		fmt.Fprintln(w)
	}
}

// WriteFig7 renders map markers.
func WriteFig7(w io.Writer, pts []Fig7Point) {
	fmt.Fprintf(w, "Fig 7: locations of cloud regions and selected servers\n")
	fmt.Fprintf(w, "%-14s %-13s %8s %9s  %s\n", "region", "kind", "lat", "lon", "label")
	for _, p := range pts {
		fmt.Fprintf(w, "%-14s %-13s %8.2f %9.2f  %s\n", p.Region, p.Kind, p.Lat, p.Lon, p.Label)
	}
}

// WriteFig8 renders business-type congestion counts.
func WriteFig8(w io.Writer, region string, rows []analysis.Fig8Row) {
	fmt.Fprintf(w, "Fig 8 (%s): congested / total servers by business type\n", region)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %3d congested / %3d total\n", r.Type, r.Congested, r.Total)
	}
}

// WriteHeadlines renders the four §1 findings with the paper's bands.
func WriteHeadlines(w io.Writer, h Headlines) {
	fmt.Fprintf(w, "Headline findings (paper band in parentheses):\n")
	fmt.Fprintf(w, "  congested pair-hours at H=0.5:   %5.2f%%  (paper 1.3-3%%)\n", h.CongestedHourFrac*100)
	fmt.Fprintf(w, "  ISPs congested >10%% of days:     %5.1f%%  (paper 30-70%%)\n", h.CongestedISPFrac*100)
	fmt.Fprintf(w, "  p95 download in 200-600 Mbps:    %5.1f%%  (paper ~80%%)\n", h.P95DownIn200600*100)
	fmt.Fprintf(w, "  standard tier faster (download): %5.1f%%  (paper: generally higher)\n", h.StdTierHigherFrac*100)
}

// WriteDifferentialSelection renders the chosen differential servers.
func WriteDifferentialSelection(w io.Writer, region string, sel []selection.DiffSelected) {
	fmt.Fprintf(w, "Differential-based selection (%s): %d servers\n", region, len(sel))
	sorted := append([]selection.DiffSelected(nil), sel...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Server.ID < sorted[j].Server.ID })
	for _, s := range sorted {
		fmt.Fprintf(w, "  %-38s %-16s class=%-14s delta=%+.0fms\n",
			s.Server.Host, s.Server.City+"/"+s.Server.Country, s.Class, s.DeltaMs)
	}
}

// Separator prints a section divider for multi-artifact reports.
func Separator(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
