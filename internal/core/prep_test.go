package core

import (
	"reflect"
	"testing"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/netsim"
)

// TestPreparedMatchesCursor is the incremental-analysis equivalence
// property the pipelined scheduler rests on: the per-pair series and day
// partitions a campaign builds incrementally during its emit phase
// (CampaignPrep, fed round by round) must equal what the post-hoc kernels
// compute over the finished record stream. Byte-identical `report all`
// output at any parallelism follows from this plus deterministic merge.
func TestPreparedMatchesCursor(t *testing.T) {
	c, err := New(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := c.RunTopologyCampaign("us-west1", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []netsim.Direction{netsim.Download, netsim.Upload} {
		sw, ok := res.PreparedSeries(dir, bgp.Premium)
		if !ok {
			t.Fatalf("campaign has no prepared series for %v/premium", dir)
		}
		want := analysis.GroupSeriesWithServerCursor(res.Cursor(), dir, bgp.Premium)
		if !reflect.DeepEqual(sw, want) {
			t.Fatalf("prepared series for %v/premium differ from the cursor grouping (%d vs %d series)",
				dir, len(sw), len(want))
		}
	}

	parts, ok := res.PreparedPartitions(netsim.Download, bgp.Premium)
	if !ok {
		t.Fatal("campaign has no prepared download partitions")
	}
	want := analysis.GroupSeriesWithServerCursor(res.Cursor(), netsim.Download, bgp.Premium)
	if len(parts) != len(want) {
		t.Fatalf("%d prepared partitions for %d series", len(parts), len(want))
	}
	const minSamples = 4
	for i, sw := range want {
		ref := congestion.NewPartition(sw.Series)
		if !reflect.DeepEqual(parts[i].Days(minSamples), ref.Days(minSamples)) {
			t.Fatalf("partition %d (%s): prepared day split differs from NewPartition", i, sw.Series.PairID)
		}
		if !reflect.DeepEqual(parts[i].DayMedians(), ref.DayMedians()) {
			t.Fatalf("partition %d (%s): prepared day medians differ from NewPartition", i, sw.Series.PairID)
		}
		gotEv, gotHr := parts[i].HourTally(0.2, minSamples)
		wantEv, wantHr := ref.HourTally(0.2, minSamples)
		if gotEv != wantEv || gotHr != wantHr {
			t.Fatalf("partition %d (%s): prepared hour tally (%d,%d) != post-hoc (%d,%d)",
				i, sw.Series.PairID, gotEv, gotHr, wantEv, wantHr)
		}
	}
}
