package core

import (
	"testing"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/selection"
)

// newCLASP builds a small-scale instance shared across subtests.
func newCLASP(t *testing.T) *CLASP {
	t.Helper()
	c, err := New(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewDefaults(t *testing.T) {
	c, err := New(Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Opts.Seed == 0 {
		t.Error("seed not defaulted")
	}
	if c.Topo == nil || c.Sim == nil || c.Bucket == nil || c.Store == nil {
		t.Error("components missing")
	}
}

func TestSelectTopologyServersBudgets(t *testing.T) {
	c := newCLASP(t)
	sel, err := c.SelectTopologyServers("us-west2")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) > RegionBudgets["us-west2"] {
		t.Errorf("budget exceeded: %d > %d", len(sel.Selected), RegionBudgets["us-west2"])
	}
	selFree, err := c.SelectTopologyServers("us-east1")
	if err != nil {
		t.Fatal(err)
	}
	if len(selFree.Selected) == 0 {
		t.Fatal("nothing selected in unbudgeted region")
	}
}

func TestTable1Shape(t *testing.T) {
	c := newCLASP(t)
	rows, err := c.Table1([]string{"us-west1", "us-east1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Structural invariants of Table 1.
		if r.PilotLinks <= r.ServerLinks {
			t.Errorf("%s: pilot links (%d) should far exceed server links (%d)", r.Region, r.PilotLinks, r.ServerLinks)
		}
		if r.Measured > r.ServerLinks {
			t.Errorf("%s: measured (%d) > server links (%d)", r.Region, r.Measured, r.ServerLinks)
		}
		if r.CoveragePct <= 0 || r.CoveragePct > 100 {
			t.Errorf("%s: coverage %.1f%%", r.Region, r.CoveragePct)
		}
		// Most servers share interconnects (paper: 75.5-91.6%).
		if r.SharedPct < 50 {
			t.Errorf("%s: shared fraction %.1f%%, want > 50%%", r.Region, r.SharedPct)
		}
	}
}

func TestTopologyCampaignAndFigures(t *testing.T) {
	c := newCLASP(t)
	res, sel, err := c.RunTopologyCampaign("us-west1", 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 || res.Report.Tests == 0 {
		t.Fatal("empty campaign")
	}

	// Fig 2: sweeps are monotone non-increasing and bracket the paper's
	// observations loosely at H=0.25 vs H=0.5.
	fig2 := Fig2(map[string]*CampaignResult{"us-west1": res}, nil, 1)
	if len(fig2) != 1 {
		t.Fatalf("fig2 series = %d", len(fig2))
	}
	sweep := fig2[0]
	var at25, at50 float64
	for _, p := range sweep.Days {
		if p.H == 0.25 {
			at25 = p.Fraction
		}
		if p.H == 0.5 {
			at50 = p.Fraction
		}
	}
	if at25 <= at50 {
		t.Errorf("day sweep not decreasing: f(0.25)=%.2f <= f(0.5)=%.2f", at25, at50)
	}
	// At H=0.5 the day fraction should be moderate (paper: 11-30%).
	if at50 < 0.02 || at50 > 0.6 {
		t.Errorf("congested days at H=0.5: %.3f, want moderate", at50)
	}
	var h25, h50 float64
	for _, p := range sweep.Hours {
		if p.H == 0.25 {
			h25 = p.Fraction
		}
		if p.H == 0.5 {
			h50 = p.Fraction
		}
	}
	if h50 > 0.15 || h50 <= 0 {
		t.Errorf("congested hours at H=0.5: %.4f, want small but positive", h50)
	}
	if h25 <= h50 {
		t.Error("hour sweep not decreasing")
	}
	// The elbow lands in a plausible band.
	if sweep.ElbowH < 0.15 || sweep.ElbowH > 0.8 {
		t.Errorf("elbow at H=%.2f", sweep.ElbowH)
	}

	// Fig 4 (topology panel): latency mostly < 150ms, p95 download well
	// below the 1 Gbps cap.
	fig4, err := Fig4(res, bgp.Premium)
	if err != nil {
		t.Fatal(err)
	}
	lowLat, capped := 0, 0
	for _, p := range fig4.Points {
		if p.P5LatMs < 150 {
			lowLat++
		}
		if p.P95Down >= 950 {
			capped++
		}
	}
	if float64(lowLat) < 0.8*float64(len(fig4.Points)) {
		t.Errorf("only %d/%d points under 150ms", lowLat, len(fig4.Points))
	}
	if capped > len(fig4.Points)/10 {
		t.Errorf("%d/%d points saturate the 1Gbps cap", capped, len(fig4.Points))
	}
	if len(fig4.DownKDE) == 0 || len(fig4.LatKDE) == 0 {
		t.Error("marginal KDEs missing")
	}

	// Fig 6: top congested pairs with hourly probabilities.
	lines := c.Fig6(res, bgp.Premium, 10)
	if len(lines) == 0 {
		t.Fatal("no Fig6 lines (no congestion events at all)")
	}
	for _, l := range lines {
		sum := 0.0
		for _, p := range l.Probs {
			if p < 0 || p > 1 {
				t.Errorf("probability out of range: %v", p)
			}
			sum += p
		}
		if sum == 0 {
			t.Errorf("line %s has all-zero probabilities", l.Label)
		}
		if l.Events == 0 {
			t.Errorf("line %s has no events", l.Label)
		}
	}

	// Fig 7 points.
	pts := c.Fig7("us-west1", sel, nil)
	if len(pts) != len(sel.Selected)+1 {
		t.Errorf("fig7 points = %d, want %d", len(pts), len(sel.Selected)+1)
	}
	if pts[0].Kind != "region" {
		t.Error("first point should be the region marker")
	}

	// Fig 8: counts consistent.
	rows := c.Fig8(res, bgp.Premium)
	total := 0
	for _, r := range rows {
		if r.Congested > r.Total {
			t.Errorf("row %+v inconsistent", r)
		}
		total += r.Total
	}
	if total != len(sel.Selected) {
		t.Errorf("fig8 total %d != selected %d", total, len(sel.Selected))
	}
}

func TestFig3CoxSeries(t *testing.T) {
	c := newCLASP(t)
	// Build a campaign that includes the Cox Las Vegas server directly.
	var servers []*selection.Selected
	_ = servers
	res, _, err := c.RunTopologyCampaign("us-west1", 40)
	if err != nil {
		t.Fatal(err)
	}
	fig3, err := c.Fig3(res)
	if err != nil {
		t.Skipf("Cox server not in selection at this scale: %v", err)
	}
	if len(fig3.Samples) == 0 || len(fig3.VH) != len(fig3.Samples) {
		t.Fatalf("fig3 window malformed: %d samples, %d VH", len(fig3.Samples), len(fig3.VH))
	}
	for i, v := range fig3.VH {
		if v < 0 || v > 1 {
			t.Errorf("VH[%d] = %v", i, v)
		}
	}
	for _, e := range fig3.Events {
		if e.VH <= 0.5 {
			t.Errorf("event below threshold: %+v", e)
		}
	}
}

func TestDifferentialCampaignAndFig5(t *testing.T) {
	c := newCLASP(t)
	res, sel, err := c.RunDifferentialCampaign("europe-west1", 14, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("no differential servers")
	}
	fig5, err := Fig5(res, sel)
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: standard tier generally faster for downloads.
	if fig5.StdHigherDownload < 0.5 {
		t.Errorf("standard faster in only %.0f%% of download pairs", fig5.StdHigherDownload*100)
	}
	// Relative differences mostly within 50%.
	if fig5.Within50 < 0.6 {
		t.Errorf("|delta|<0.5 in only %.0f%%", fig5.Within50*100)
	}
	metrics := make(map[analysis.Metric]bool)
	for _, curve := range fig5.Curves {
		metrics[curve.Metric] = true
		if len(curve.CDF) == 0 || curve.N == 0 {
			t.Errorf("empty curve: %+v", curve)
		}
	}
	if len(metrics) != 3 {
		t.Errorf("metrics covered: %v", metrics)
	}

	// Fig 6c equivalent: congestion lines per tier.
	prem := c.Fig6(res, bgp.Premium, 6)
	std := c.Fig6(res, bgp.Standard, 6)
	if len(prem) == 0 && len(std) == 0 {
		t.Log("no congested differential pairs at this scale (acceptable)")
	}
}

func TestComputeHeadlines(t *testing.T) {
	c := newCLASP(t)
	resW, _, err := c.RunTopologyCampaign("us-west1", 30)
	if err != nil {
		t.Fatal(err)
	}
	diff, _, err := c.RunDifferentialCampaign("europe-west1", 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	h := c.ComputeHeadlines(map[string]*CampaignResult{"us-west1": resW}, diff)
	// Finding 1: 1.3-3% of hours congested (loose band for small scale).
	if h.CongestedHourFrac <= 0 || h.CongestedHourFrac > 0.12 {
		t.Errorf("congested hour fraction = %.4f", h.CongestedHourFrac)
	}
	// Finding 2: 30-70% of ISPs congested (loose band).
	if h.CongestedISPFrac < 0.1 || h.CongestedISPFrac > 0.95 {
		t.Errorf("congested ISP fraction = %.2f", h.CongestedISPFrac)
	}
	// Finding 3: most p95 download in 200-600 Mbps.
	if h.P95DownIn200600 < 0.4 {
		t.Errorf("p95 in band fraction = %.2f", h.P95DownIn200600)
	}
	// Finding 4: standard tier generally higher.
	if h.StdTierHigherFrac < 0.5 {
		t.Errorf("standard higher fraction = %.2f", h.StdTierHigherFrac)
	}
}

func TestRunTopologyCampaignsMatchesIndividual(t *testing.T) {
	regions := []string{"us-west1", "us-central1"}
	// Concurrent multi-region run at parallelism 3.
	par, err := New(Options{Seed: 3, Scale: 0.1, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	results, sels, err := par.RunTopologyCampaigns(regions, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential single-region runs on a fresh instance, same seed.
	seq := newCLASP(t)
	for _, region := range regions {
		want, _, err := seq.RunTopologyCampaign(region, 2)
		if err != nil {
			t.Fatal(err)
		}
		got := results[region]
		if got == nil || sels[region] == nil {
			t.Fatalf("region %s missing from concurrent results", region)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("%s: %d records, want %d", region, len(got.Records), len(want.Records))
		}
		for i := range got.Records {
			if got.Records[i] != want.Records[i] {
				t.Fatalf("%s: record %d = %+v, want %+v", region, i, got.Records[i], want.Records[i])
			}
		}
		if got.Report.Tests != want.Report.Tests || got.Report.VMs != want.Report.VMs {
			t.Errorf("%s: report %+v, want %+v", region, got.Report, want.Report)
		}
	}
}

func TestDefaultThresholdGrid(t *testing.T) {
	hs := DefaultThresholdGrid()
	if len(hs) != 21 || hs[0] != 0 || hs[20] != 1 {
		t.Errorf("grid = %v", hs)
	}
}

func TestFig2RegionalOrdering(t *testing.T) {
	// Fig 2: us-west1 showed the lowest and us-east4 the highest
	// percentage of congestion events.
	c := newCLASP(t)
	results := make(map[string]*CampaignResult)
	for _, region := range []string{"us-west1", "us-east4"} {
		res, _, err := c.RunTopologyCampaign(region, 30)
		if err != nil {
			t.Fatal(err)
		}
		results[region] = res
	}
	sweeps := Fig2(results, []float64{0.5}, 4)
	frac := make(map[string]float64)
	for _, s := range sweeps {
		frac[s.Region] = s.Days[0].Fraction
	}
	if frac["us-west1"] >= frac["us-east4"] {
		t.Errorf("us-west1 (%.3f) not below us-east4 (%.3f) at H=0.5",
			frac["us-west1"], frac["us-east4"])
	}
}
