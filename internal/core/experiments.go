package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/selection"
	"github.com/clasp-measurement/clasp/internal/stats"
	"github.com/clasp-measurement/clasp/internal/topology"
)

// --- Multi-region campaigns ----------------------------------------------------

// RunTopologyCampaigns runs the topology-based campaign in several regions
// concurrently — the deployment shape of the paper, where all regions
// measured in parallel for the whole window. Server selection stays
// sequential (the pilot scans share bdrmap/alias state); the planned
// campaigns then fan out one goroutine per region over the shared,
// thread-safe platform, bucket and store, with the engine's worker pool
// capping their combined VM concurrency at Opts.Parallelism — the global
// budget, not a per-campaign one. Each region's records are identical to
// running its campaign alone with the same seed.
func (c *CLASP) RunTopologyCampaigns(regions []string, days int) (map[string]*CampaignResult, map[string]*selection.TopoResult, error) {
	// When a command scheduler is attached (`costs`, resumed commands), it
	// owns planning and execution: progress registers command-wide and
	// already-finished checkpointed campaigns load instead of re-running.
	planOne := c.PlanTopologyCampaign
	runOne := c.RunPlanned
	if s := c.sched; s != nil {
		planOne = func(region string, days int) (*PlannedCampaign, error) {
			return s.Plan(CampaignRef{Kind: "topology", Region: region, Days: days})
		}
		runOne = s.Run
	}
	plans := make([]*PlannedCampaign, 0, len(regions))
	for _, region := range regions {
		p, err := planOne(region, days)
		if err != nil {
			return nil, nil, err
		}
		plans = append(plans, p)
	}
	results := make([]*CampaignResult, len(plans))
	errs := make([]error, len(plans))
	var wg sync.WaitGroup
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = runOne(plans[i])
		}(i)
	}
	wg.Wait()
	out := make(map[string]*CampaignResult, len(plans))
	sels := make(map[string]*selection.TopoResult, len(plans))
	for i, p := range plans {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		out[p.Camp.Region] = results[i]
		sels[p.Camp.Region] = p.TopoSel
	}
	return out, sels, nil
}

// --- Table 1 -------------------------------------------------------------------

// Table1Row reproduces one row of Table 1: interdomain-link coverage of the
// topology-based selection.
type Table1Row struct {
	Region      string
	PilotLinks  int     // links bdrmap found in the pilot scan
	ServerLinks int     // links traversed by traceroutes to all US servers
	Measured    int     // servers measured by CLASP (one per covered link)
	CoveragePct float64 // Measured / ServerLinks * 100
	SharedPct   float64 // servers sharing a link with others
}

// Table1 runs the topology-based selection in each region and reports the
// coverage summary.
func (c *CLASP) Table1(regions []string) ([]Table1Row, error) {
	var rows []Table1Row
	for _, region := range regions {
		sel, err := c.SelectTopologyServers(region)
		if err != nil {
			return nil, fmt.Errorf("core: table 1 for %s: %w", region, err)
		}
		rows = append(rows, Table1Row{
			Region:      region,
			PilotLinks:  sel.PilotLinks.LinkCount(),
			ServerLinks: sel.ServerLinkCount,
			Measured:    len(sel.Selected),
			CoveragePct: sel.Coverage() * 100,
			SharedPct:   sel.SharedFraction * 100,
		})
	}
	return rows, nil
}

// --- Fig. 2 --------------------------------------------------------------------

// Fig2Series is one region's threshold sweep for congested pair-days
// (Fig. 2a) and pair-hours (Fig. 2b).
type Fig2Series struct {
	Region string
	Days   []congestion.SweepPoint
	Hours  []congestion.SweepPoint
	// ElbowH is the knee of the day sweep (the paper chose H = 0.5).
	ElbowH float64
}

// DefaultThresholdGrid is the H grid used for the Fig. 2 sweeps.
func DefaultThresholdGrid() []float64 {
	hs := make([]float64, 0, 21)
	for i := 0; i <= 20; i++ {
		hs = append(hs, float64(i)/20)
	}
	return hs
}

// Fig2 computes the threshold sweeps from per-region campaign records
// (download direction, premium tier — the ingress measurements of §3.3).
// Regions fan out across `parallelism` workers; each writes its sweep to
// its own index in region-sorted order, so the output is identical to the
// serial loop at any parallelism. Each region's series are partitioned
// into days once and both sweeps reuse the cached partition.
func Fig2(results map[string]*CampaignResult, hs []float64, parallelism int) []Fig2Series {
	if hs == nil {
		hs = DefaultThresholdGrid()
	}
	regions := make([]string, 0, len(results))
	for r := range results {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	out := make([]Fig2Series, len(regions))
	analysis.ParallelFor(parallelism, len(regions), func(i int) {
		region := regions[i]
		_, parts := results[region].SeriesAndPartitions(netsim.Download, bgp.Premium)
		s := Fig2Series{
			Region: region,
			Days:   congestion.SweepDaysPartitioned(parts, hs, 0),
			Hours:  congestion.SweepHoursPartitioned(parts, hs, 0),
		}
		if h, err := congestion.ElbowThreshold(s.Days); err == nil {
			s.ElbowH = h
		}
		out[i] = s
	})
	return out
}

// --- Fig. 3 --------------------------------------------------------------------

// Fig3Data is the two-day annotated time series of one pair: download
// throughput, its normalised intra-day difference, and the congested hours.
type Fig3Data struct {
	PairID  string
	Samples []congestion.Sample
	VH      []float64
	Events  []congestion.Event
}

// Fig3 extracts the paper's example series: the Cox (Las Vegas) server
// measured from us-west1, over the first two-day window containing at
// least one congestion event.
func (c *CLASP) Fig3(result *CampaignResult) (*Fig3Data, error) {
	var cox *topology.Server
	for _, s := range c.Topo.Servers() {
		if s.ASN == 22773 && s.City == "Las Vegas" {
			cox = s
			break
		}
	}
	if cox == nil {
		return nil, fmt.Errorf("core: no Cox Las Vegas server in the topology")
	}
	var coxSeries *congestion.Series
	for _, sr := range analysis.GroupSeriesCursor(result.Cursor(), netsim.Download, bgp.Premium) {
		sr := sr
		if sr.PairID == fmt.Sprintf("%s/%d/premium/download", result.Region, cox.ID) {
			coxSeries = &sr
			break
		}
	}
	if coxSeries == nil {
		// The pair was not part of the selection (the paper hand-picked
		// it); measure it directly over the campaign window.
		days := 30
		if result.NumRecords() > 0 {
			first := result.FirstRecord().Time
			last := result.LastRecord().Time
			if d := int(last.Sub(first).Hours()/24) + 1; d > 0 {
				days = d
			}
		}
		sr := congestion.Series{PairID: fmt.Sprintf("%s/%d/premium/download", result.Region, cox.ID)}
		for h := 0; h < days*24; h++ {
			at := CampaignStart.Add(time.Duration(h) * time.Hour)
			res, err := c.Sim.Measure(netsim.TestSpec{
				Region: result.Region, Server: cox, Tier: bgp.Premium,
				Dir: netsim.Download, Time: at,
			})
			if err != nil {
				return nil, fmt.Errorf("core: measuring Cox pair directly: %w", err)
			}
			sr.Samples = append(sr.Samples, congestion.Sample{Time: at, Mbps: res.ThroughputMbps})
		}
		coxSeries = &sr
	}
	det := congestion.NewDetector()
	events := det.Events(*coxSeries)

	// Find a two-day window with events; fall back to the first two days.
	startIdx := 0
	if len(events) > 0 {
		evDay := events[0].Time.Truncate(24 * 3600e9)
		for i, s := range coxSeries.Samples {
			if !s.Time.Before(evDay) {
				startIdx = i
				break
			}
		}
	}
	endIdx := startIdx + 48
	if endIdx > len(coxSeries.Samples) {
		endIdx = len(coxSeries.Samples)
	}
	window := congestion.Series{PairID: coxSeries.PairID, Samples: coxSeries.Samples[startIdx:endIdx]}
	wEvents := det.Events(window)

	// VH per sample within the window.
	vh := make([]float64, len(window.Samples))
	dayMax := make(map[int64]float64)
	for _, s := range window.Samples {
		d := s.Time.Unix() / 86400
		if s.Mbps > dayMax[d] {
			dayMax[d] = s.Mbps
		}
	}
	for i, s := range window.Samples {
		if m := dayMax[s.Time.Unix()/86400]; m > 0 {
			vh[i] = (m - s.Mbps) / m
		}
	}
	return &Fig3Data{PairID: window.PairID, Samples: window.Samples, VH: vh, Events: wEvents}, nil
}

// --- Fig. 4 --------------------------------------------------------------------

// Fig4Data is one panel of Fig. 4: per-(server, month) p95 download vs p5
// latency points with marginal KDEs.
type Fig4Data struct {
	Region  string
	Tier    bgp.Tier
	Points  []analysis.PerfPoint
	DownKDE []stats.KDEPoint
	LatKDE  []stats.KDEPoint
}

// Fig4 builds a panel from campaign records for one tier.
func Fig4(result *CampaignResult, tier bgp.Tier) (*Fig4Data, error) {
	points := analysis.PerfPointsCursor(analysis.NewFilterCursor(result.Cursor(),
		func(m *analysis.Measurement) bool { return m.Tier == tier }))
	if len(points) == 0 {
		return nil, fmt.Errorf("core: no perf points for %s/%s", result.Region, tier)
	}
	down, err := analysis.MarginalKDE(points, false)
	if err != nil {
		return nil, err
	}
	lat, err := analysis.MarginalKDE(points, true)
	if err != nil {
		return nil, err
	}
	return &Fig4Data{Region: result.Region, Tier: tier, Points: points, DownKDE: down, LatKDE: lat}, nil
}

// --- Fig. 5 --------------------------------------------------------------------

// Fig5Curve is one CDF of relative tier difference, for one metric and one
// preliminary-latency class.
type Fig5Curve struct {
	Metric analysis.Metric
	Class  selection.DiffClass
	CDF    []stats.CDFPoint
	N      int
}

// Fig5Summary carries the curves plus the headline fractions of §4.1.
type Fig5Summary struct {
	Region string
	Curves []Fig5Curve
	// StdHigherDownload is the fraction of download deltas with the
	// standard tier faster (paper: standard generally higher).
	StdHigherDownload float64
	// Within50 is the fraction of download deltas with |Δ| < 0.5
	// (paper: > 92 %).
	Within50 float64
}

// Fig5 computes the tier-difference CDFs from a differential campaign,
// grouping servers by their preliminary-scan class.
func Fig5(result *CampaignResult, selected []selection.DiffSelected) (*Fig5Summary, error) {
	classOf := make(map[int]selection.DiffClass, len(selected))
	for _, s := range selected {
		classOf[s.Server.ID] = s.Class
	}
	out := &Fig5Summary{Region: result.Region}
	for _, metric := range []analysis.Metric{analysis.MetricDownload, analysis.MetricUpload, analysis.MetricLatency} {
		deltas := analysis.TierDeltasCursor(result.Cursor(), result.Region, metric)
		if metric == analysis.MetricDownload {
			out.StdHigherDownload = analysis.FractionStandardHigher(deltas)
			out.Within50 = analysis.FractionWithin(deltas, 0.5)
		}
		byClass := make(map[selection.DiffClass][]analysis.TierDelta)
		for _, d := range deltas {
			cl, ok := classOf[d.ServerID]
			if !ok {
				continue
			}
			byClass[cl] = append(byClass[cl], d)
		}
		for _, cl := range []selection.DiffClass{selection.Comparable, selection.PremiumLower, selection.StandardLower} {
			ds := byClass[cl]
			if len(ds) == 0 {
				continue
			}
			cdf, err := analysis.DeltaCDF(ds)
			if err != nil {
				continue
			}
			out.Curves = append(out.Curves, Fig5Curve{Metric: metric, Class: cl, CDF: cdf, N: len(ds)})
		}
	}
	if len(out.Curves) == 0 {
		return nil, fmt.Errorf("core: no tier-delta curves for %s", result.Region)
	}
	return out, nil
}

// --- Fig. 6 --------------------------------------------------------------------

// Fig6Line is the hourly congestion probability of one pair, labelled
// <Location><Network> as in the figure.
type Fig6Line struct {
	Label  string
	Tier   bgp.Tier
	Events int
	Probs  [24]float64 // indexed by server-local hour
}

// Fig6 returns the hourly congestion probability of the top-n most
// congested pairs in a campaign, per tier, in server-local time.
func (c *CLASP) Fig6(result *CampaignResult, tier bgp.Tier, topN int) []Fig6Line {
	if topN <= 0 {
		topN = 10
	}
	det := congestion.NewDetector()
	series, parts := result.SeriesAndPartitions(netsim.Download, tier)
	type cand struct {
		line   Fig6Line
		events int
	}
	var cands []cand
	for i, sw := range series {
		events := det.EventsIn(parts[i])
		if len(events) == 0 {
			continue
		}
		srv := c.Topo.Server(sw.ServerID)
		if srv == nil {
			continue
		}
		city, ok := c.Topo.CityOf(srv.City)
		if !ok {
			continue
		}
		as := c.Topo.AS(srv.ASN)
		label := fmt.Sprintf("<%s><%s AS%d>", srv.City, as.Name, srv.ASN)
		cands = append(cands, cand{
			line: Fig6Line{
				Label:  label,
				Tier:   tier,
				Events: len(events),
				Probs:  congestion.HourlyProbability(sw.Series, events, city.UTCOffset),
			},
			events: len(events),
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].events != cands[j].events {
			return cands[i].events > cands[j].events
		}
		return cands[i].line.Label < cands[j].line.Label
	})
	if len(cands) > topN {
		cands = cands[:topN]
	}
	out := make([]Fig6Line, len(cands))
	for i, c := range cands {
		out[i] = c.line
	}
	return out
}

// --- Fig. 7 --------------------------------------------------------------------

// Fig7Point is one map marker: a cloud region or a selected server.
type Fig7Point struct {
	Region string // owning region panel
	Kind   string // "region", "topology", "differential"
	Label  string
	Lat    float64
	Lon    float64
}

// Fig7 returns the map markers for a region's selections.
func (c *CLASP) Fig7(region string, topo *selection.TopoResult, diff []selection.DiffSelected) []Fig7Point {
	var out []Fig7Point
	if r, ok := c.Topo.Region(region); ok {
		if coord, ok := c.Topo.CityCoord(r.City); ok {
			out = append(out, Fig7Point{Region: region, Kind: "region", Label: r.City, Lat: coord.Lat, Lon: coord.Lon})
		}
	}
	if topo != nil {
		for _, s := range topo.Selected {
			out = append(out, Fig7Point{Region: region, Kind: "topology", Label: s.Server.Host, Lat: s.Server.Lat, Lon: s.Server.Lon})
		}
	}
	for _, s := range diff {
		out = append(out, Fig7Point{Region: region, Kind: "differential", Label: s.Server.Host, Lat: s.Server.Lat, Lon: s.Server.Lon})
	}
	return out
}

// --- Fig. 8 --------------------------------------------------------------------

// Fig8 labels each measured server as congested (>10 % of days with an
// event) and groups by business type.
func (c *CLASP) Fig8(result *CampaignResult, tier bgp.Tier) []analysis.Fig8Row {
	det := congestion.NewDetector()
	series, parts := result.SeriesAndPartitions(netsim.Download, tier)
	congested := make(map[int]bool)
	var ids []int
	for i, sw := range series {
		ids = append(ids, sw.ServerID)
		if congestion.CongestedPairIn(parts[i], det, 0.1) {
			congested[sw.ServerID] = true
		}
	}
	return analysis.Fig8Counts(c.Topo, result.Region, ids, congested)
}

// --- Headline findings -----------------------------------------------------------

// Headlines are the paper's four main quantitative findings (§1).
type Headlines struct {
	// CongestedHourFrac: fraction of pair-hours with a >50 % drop from
	// the daily peak (paper: 1.3-3 %).
	CongestedHourFrac float64
	// CongestedISPFrac: fraction of measured ISPs with events on >10 % of
	// days (paper: 30-70 %).
	CongestedISPFrac float64
	// P95DownIn200600: fraction of topology-selected servers whose p95
	// download falls in 200-600 Mbps (paper: ~80 %).
	P95DownIn200600 float64
	// StdTierHigherFrac: fraction of download deltas where the standard
	// tier was faster.
	StdTierHigherFrac float64
}

// ComputeHeadlines derives the findings from topology-campaign results and
// an optional differential campaign. Per-region analysis fans out across
// Opts.Parallelism workers; every fold below is an integer tally summed in
// region-sorted index order, so the headlines are identical at any
// parallelism.
func (c *CLASP) ComputeHeadlines(topoResults map[string]*CampaignResult, diff *CampaignResult) Headlines {
	var h Headlines
	regions := make([]string, 0, len(topoResults))
	for r := range topoResults {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	type regionTally struct {
		hourEvents, hourTotal    int
		ispPairs, ispCongested   int
		perfIn200600, perfPoints int
	}
	tallies := make([]regionTally, len(regions))
	det := congestion.NewDetector()
	analysis.ParallelFor(c.Opts.Parallelism, len(regions), func(i int) {
		res := topoResults[regions[i]]
		t := &tallies[i]
		series, parts := res.SeriesAndPartitions(netsim.Download, bgp.Premium)
		for j, sw := range series {
			ev, hrs := parts[j].HourTally(det.H, det.MinSamples)
			t.hourEvents += ev
			t.hourTotal += hrs
			if analysis.BusinessOf(c.Topo, sw.ServerID) == topology.BizISP {
				t.ispPairs++
				if congestion.CongestedPairIn(parts[j], det, 0.1) {
					t.ispCongested++
				}
			}
		}
		for _, p := range analysis.PerfPointsCursor(res.Cursor()) {
			t.perfPoints++
			if p.P95Down >= 200 && p.P95Down <= 600 {
				t.perfIn200600++
			}
		}
	})
	var sum regionTally
	for i := range tallies {
		sum.hourEvents += tallies[i].hourEvents
		sum.hourTotal += tallies[i].hourTotal
		sum.ispPairs += tallies[i].ispPairs
		sum.ispCongested += tallies[i].ispCongested
		sum.perfIn200600 += tallies[i].perfIn200600
		sum.perfPoints += tallies[i].perfPoints
	}
	if sum.hourTotal > 0 {
		h.CongestedHourFrac = float64(sum.hourEvents) / float64(sum.hourTotal)
	}
	if sum.ispPairs > 0 {
		h.CongestedISPFrac = float64(sum.ispCongested) / float64(sum.ispPairs)
	}
	if sum.perfPoints > 0 {
		h.P95DownIn200600 = float64(sum.perfIn200600) / float64(sum.perfPoints)
	}
	if diff != nil {
		deltas := analysis.TierDeltasCursor(diff.Cursor(), diff.Region, analysis.MetricDownload)
		h.StdTierHigherFrac = analysis.FractionStandardHigher(deltas)
	}
	return h
}
