package core

import (
	"reflect"
	"testing"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
)

// newStreamingCLASP builds an instance whose campaigns exceed the memory
// budget and therefore run through the compressed, disk-spilled record log.
func newStreamingCLASP(t *testing.T) *CLASP {
	t.Helper()
	c, err := New(Options{Seed: 3, Scale: 0.1, MaxMemoryMB: 1, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStreamingCampaignIdentical pins the tentpole invariant: a campaign
// run under a memory budget — records compressed block-at-a-time into a
// spilled columnar log, analyses reading it back through cursors — produces
// exactly the results of the unbounded in-memory path.
func TestStreamingCampaignIdentical(t *testing.T) {
	mem := newCLASP(t)
	stream := newStreamingCLASP(t)

	resM, _, err := mem.RunTopologyCampaign("us-west1", 30)
	if err != nil {
		t.Fatal(err)
	}
	resS, _, err := stream.RunTopologyCampaign("us-west1", 30)
	if err != nil {
		t.Fatal(err)
	}
	defer resS.Close()

	if resM.Log != nil {
		t.Fatal("unbounded campaign used the record log")
	}
	if resS.Log == nil {
		t.Fatal("budgeted campaign did not stream (raise the campaign size or lower the budget)")
	}
	if !resS.Log.Spilled() {
		t.Fatal("streamed campaign's log was not spilled")
	}
	if resS.Records != nil {
		t.Fatal("streamed campaign also kept a record slice")
	}
	if got, want := resS.NumRecords(), resM.NumRecords(); got != want {
		t.Fatalf("streamed campaign has %d records, in-memory has %d", got, want)
	}
	if !reflect.DeepEqual(resS.FirstRecord(), resM.FirstRecord()) ||
		!reflect.DeepEqual(resS.LastRecord(), resM.LastRecord()) {
		t.Fatal("first/last record drifted between representations")
	}

	// The full record sequence replays identically through the cursor
	// (batch boundaries differ between representations, so flatten both).
	drain := func(c analysis.Cursor) []analysis.Measurement {
		var out []analysis.Measurement
		for b := c.Next(); b != nil; b = c.Next() {
			out = append(out, b...)
		}
		return out
	}
	gotRecs, wantRecs := drain(resS.Cursor()), drain(resM.Cursor())
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("streamed cursor yields %d records, in-memory %d", len(gotRecs), len(wantRecs))
	}
	for i := range wantRecs {
		if !reflect.DeepEqual(gotRecs[i], wantRecs[i]) {
			t.Fatalf("record %d drifted:\n mem: %+v\n log: %+v", i, wantRecs[i], gotRecs[i])
		}
	}

	// Every figure derived from the campaign is deeply equal.
	fig4M, err := Fig4(resM, bgp.Premium)
	if err != nil {
		t.Fatal(err)
	}
	fig4S, err := Fig4(resS, bgp.Premium)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig4M, fig4S) {
		t.Error("Fig4 differs between in-memory and streamed campaigns")
	}
	if got, want := stream.Fig8(resS, bgp.Premium), mem.Fig8(resM, bgp.Premium); !reflect.DeepEqual(got, want) {
		t.Error("Fig8 differs between in-memory and streamed campaigns")
	}
	fig2M := Fig2(map[string]*CampaignResult{"us-west1": resM}, nil, 1)
	fig2S := Fig2(map[string]*CampaignResult{"us-west1": resS}, nil, 3)
	if !reflect.DeepEqual(fig2M, fig2S) {
		t.Error("Fig2 differs between in-memory and streamed campaigns")
	}
	hM := mem.ComputeHeadlines(map[string]*CampaignResult{"us-west1": resM}, nil)
	hS := stream.ComputeHeadlines(map[string]*CampaignResult{"us-west1": resS}, nil)
	if hM != hS {
		t.Errorf("headlines differ: mem %+v stream %+v", hM, hS)
	}
}

// TestStreamingDifferentialIdentical covers the two-tier analysis path
// (tier deltas pair premium/standard records across the stream).
func TestStreamingDifferentialIdentical(t *testing.T) {
	mem := newCLASP(t)
	stream := newStreamingCLASP(t)

	resM, selM, err := mem.RunDifferentialCampaign("europe-west1", 14, 6)
	if err != nil {
		t.Fatal(err)
	}
	resS, _, err := stream.RunDifferentialCampaign("europe-west1", 14, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer resS.Close()
	if resS.Log == nil {
		t.Fatal("budgeted differential campaign did not stream")
	}

	for _, metric := range []analysis.Metric{analysis.MetricDownload, analysis.MetricUpload, analysis.MetricLatency} {
		got := analysis.TierDeltasCursor(resS.Cursor(), resS.Region, metric)
		want := analysis.TierDeltasCursor(resM.Cursor(), resM.Region, metric)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("TierDeltas(%v) differs between representations", metric)
		}
	}
	fig5M, err := Fig5(resM, selM)
	if err != nil {
		t.Fatal(err)
	}
	fig5S, err := Fig5(resS, selM)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig5M, fig5S) {
		t.Error("Fig5 differs between in-memory and streamed campaigns")
	}
}
