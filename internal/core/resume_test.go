package core

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/clasp-measurement/clasp/internal/checkpoint"
	"github.com/clasp-measurement/clasp/internal/orchestrator"
)

// errKilled is the sentinel a test checkpoint hook returns to abort a
// campaign right after a checkpoint commits — an in-process stand-in for
// SIGKILL that leaves a valid checkpoint on disk (the cross-process kill
// matrix lives in internal/tools/resumesmoke).
var errKilled = errors.New("resume test: simulated kill after checkpoint")

// TestResumeCampaignBitIdentical is the core resume invariant: kill a
// campaign after a mid-run checkpoint, resume it on a fresh engine at a
// DIFFERENT parallelism, and the records and report must match an
// uninterrupted run bit-exactly. Runs fault-free and with the flaky-vm
// profile so breaker state, create-attempt residue and dead-VM slots all
// travel through the checkpoint. Executed under -race in CI, the
// parallelism-4 resume also exercises the replay/emit paths concurrently.
func TestResumeCampaignBitIdentical(t *testing.T) {
	const region, days, stopAfter = "us-west1", 2, 17
	for _, prof := range []string{"none", "flaky-vm"} {
		t.Run(prof, func(t *testing.T) {
			ref, err := New(Options{Seed: 3, Scale: 0.1, FaultProfile: prof})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := ref.RunTopologyCampaign(region, days)
			if err != nil {
				t.Fatal(err)
			}

			ckDir := t.TempDir()
			killed, err := New(Options{Seed: 3, Scale: 0.1, FaultProfile: prof, CheckpointDir: ckDir})
			if err != nil {
				t.Fatal(err)
			}
			killed.testCheckpointHook = func(p orchestrator.Progress) error {
				if p.NextHour > stopAfter {
					return errKilled
				}
				return nil
			}
			if _, _, err := killed.RunTopologyCampaign(region, days); !errors.Is(err, errKilled) {
				t.Fatalf("killed campaign returned %v, want the sentinel", err)
			}

			ck, err := checkpoint.Load(ckDir)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Dir != filepath.Join(ckDir, region+"-topology") {
				t.Fatalf("checkpoint landed in %s", ck.Dir)
			}
			if got := ck.Meta.Progress.NextHour; got <= 0 || got > stopAfter+1 {
				t.Fatalf("checkpoint watermark %d, want in (0, %d]", got, stopAfter+1)
			}

			resumed, err := New(Options{Seed: 3, Scale: 0.1, FaultProfile: prof, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			res, err := resumed.ResumeCampaign(ck)
			if err != nil {
				t.Fatal(err)
			}

			if len(res.Records) != len(want.Records) {
				t.Fatalf("resumed run produced %d records, want %d", len(res.Records), len(want.Records))
			}
			for i := range want.Records {
				if res.Records[i] != want.Records[i] {
					t.Fatalf("record %d drifted across kill+resume:\n got: %+v\nwant: %+v", i, res.Records[i], want.Records[i])
				}
			}
			gotRep, wantRep := *res.Report, *want.Report
			// CPU peaks depend on goroutine interleaving, not the seed; they
			// are excluded from every durable output for the same reason.
			gotRep.MaxVMCPUUtil, wantRep.MaxVMCPUUtil = 0, 0
			if gotRep != wantRep {
				t.Fatalf("report drifted across kill+resume:\n got: %+v\nwant: %+v", gotRep, wantRep)
			}

			// The resumed run keeps checkpointing into the same directory:
			// its final checkpoint covers the whole campaign.
			final, err := checkpoint.Load(ck.Dir)
			if err != nil {
				t.Fatal(err)
			}
			if final.Meta.Progress.NextHour != days*24 {
				t.Fatalf("final watermark %d, want %d", final.Meta.Progress.NextHour, days*24)
			}
			if final.NumRecords() != len(want.Records) {
				t.Fatalf("final checkpoint covers %d records, want %d", final.NumRecords(), len(want.Records))
			}
		})
	}
}

// TestResumeCampaignRejectsMismatchedEngine pins the identity guards: a
// resume on an engine whose seed, scale or fault profile differs from the
// checkpoint must refuse rather than silently produce different output.
func TestResumeCampaignRejectsMismatchedEngine(t *testing.T) {
	ckDir := t.TempDir()
	killed, err := New(Options{Seed: 3, Scale: 0.1, CheckpointDir: ckDir})
	if err != nil {
		t.Fatal(err)
	}
	killed.testCheckpointHook = func(orchestrator.Progress) error { return errKilled }
	if _, _, err := killed.RunTopologyCampaign("us-west1", 1); !errors.Is(err, errKilled) {
		t.Fatalf("got %v, want the sentinel", err)
	}
	ck, err := checkpoint.Load(ckDir)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"seed", Options{Seed: 4, Scale: 0.1}},
		{"scale", Options{Seed: 3, Scale: 0.2}},
		{"profile", Options{Seed: 3, Scale: 0.1, FaultProfile: "flaky-vm"}},
	} {
		eng, err := New(tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ResumeCampaign(ck); err == nil {
			t.Errorf("%s mismatch: resume succeeded, want refusal", tc.name)
		}
	}

	// ResumeOptions + the free runtime knobs is the sanctioned path.
	opts := ResumeOptions(ck.Meta.Campaign)
	opts.Parallelism = 2
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ResumeCampaign(ck); err != nil {
		t.Errorf("ResumeOptions-built engine refused: %v", err)
	}

	// An unknown kind in doctored metadata must also refuse.
	ck.Meta.Campaign.Kind = "bogus"
	if _, err := eng.ResumeCampaign(ck); err == nil {
		t.Error("bogus kind: resume succeeded, want refusal")
	}
}

// TestStreamingResumeMatchesInMemory pins resume under the memory-budgeted
// representation: a killed streaming campaign (records in a spillable
// RecordLog, store index disabled or not) resumes into the same bytes as
// the in-memory reference.
func TestStreamingResumeMatchesInMemory(t *testing.T) {
	// Three days at this scale overflow the 1MB budget, forcing the
	// streaming (RecordLog) representation on the killed and resumed runs.
	const region, days = "us-west1", 3
	ref, err := New(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.RunTopologyCampaign(region, days)
	if err != nil {
		t.Fatal(err)
	}

	ckDir := t.TempDir()
	killed, err := New(Options{
		Seed: 3, Scale: 0.1,
		MaxMemoryMB: 1, SpillDir: t.TempDir(),
		CheckpointDir: ckDir, CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	killed.testCheckpointHook = func(p orchestrator.Progress) error {
		if p.NextHour > 20 {
			return errKilled
		}
		return nil
	}
	if _, _, err := killed.RunTopologyCampaign(region, days); !errors.Is(err, errKilled) {
		t.Fatalf("got %v, want the sentinel", err)
	}

	ck, err := checkpoint.Load(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	if every := ck.Meta.Campaign.Every; every != 3 {
		t.Fatalf("checkpoint cadence %d did not travel, want 3", every)
	}
	opts := ResumeOptions(ck.Meta.Campaign)
	opts.MaxMemoryMB, opts.SpillDir = 1, t.TempDir()
	resumed, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.ResumeCampaign(ck)
	if err != nil {
		t.Fatal(err)
	}
	if res.Log == nil {
		t.Fatal("streaming resume did not produce a record log")
	}
	if res.NumRecords() != len(want.Records) {
		t.Fatalf("streaming resume produced %d records, want %d", res.NumRecords(), len(want.Records))
	}
	cur, i := res.Cursor(), 0
	for batch := cur.Next(); batch != nil; batch = cur.Next() {
		for _, m := range batch {
			if m != want.Records[i] {
				t.Fatalf("record %d drifted across streaming kill+resume", i)
			}
			i++
		}
	}
}
