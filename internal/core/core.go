// Package core is the CLASP engine: it owns the synthetic Internet, the
// cloud substrate and the data pipeline, runs the paper's two selection
// methods and measurement campaigns, and regenerates every table and
// figure of the evaluation (Table 1, Figs. 2-8).
package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"time"

	"github.com/clasp-measurement/clasp/internal/alias"
	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bdrmap"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/checkpoint"
	"github.com/clasp-measurement/clasp/internal/cloud"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/faults"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/orchestrator"
	"github.com/clasp-measurement/clasp/internal/selection"
	"github.com/clasp-measurement/clasp/internal/speedchecker"
	"github.com/clasp-measurement/clasp/internal/topology"
	"github.com/clasp-measurement/clasp/internal/tsdb"
)

// CampaignStart is the virtual-time start of the paper's measurement
// window (May 1, 2020).
var CampaignStart = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// TopologyRegions are the US regions measured with the topology-based
// method; Table 1 reports five of them and Fig. 2 adds us-west4.
var TopologyRegions = []string{
	"us-west1", "us-west2", "us-west4", "us-east1", "us-east4", "us-central1",
}

// Table1Regions are the regions in Table 1.
var Table1Regions = []string{
	"us-west1", "us-west2", "us-east1", "us-east4", "us-central1",
}

// DifferentialRegions ran the two-tier experiments.
var DifferentialRegions = []string{"us-central1", "us-east1", "europe-west1"}

// RegionBudgets caps per-region deployments (the paper deployed every
// selected server in us-west1/us-east1 but only subsets elsewhere).
var RegionBudgets = map[string]int{
	"us-west1":    106,
	"us-west2":    25,
	"us-west4":    25,
	"us-east1":    184,
	"us-east4":    40,
	"us-central1": 56,
}

// Options configures a CLASP instance.
type Options struct {
	// Seed drives all generation and simulation randomness.
	Seed int64
	// Scale sizes the synthetic Internet (1.0 = paper scale; tests use
	// ~0.1). Ignored when TopoConfig is set.
	Scale float64
	// TopoConfig fully overrides topology generation.
	TopoConfig *topology.Config
	// SimConfig overrides the simulator calibration.
	SimConfig *netsim.Config
	// Parallelism bounds the concurrent VM workers per campaign round
	// (see orchestrator.Config.Parallelism). 0 or 1 runs sequentially;
	// results are identical at any value.
	Parallelism int
	// FaultProfile names the canned fault-injection profile every campaign
	// runs under (see faults.Names). "" and "none" disable injection and
	// keep campaigns bit-identical to a fault-free engine; active profiles
	// keep them deterministic per Seed. All campaigns of one instance share
	// the profile, so the platform-level injector is consistent.
	FaultProfile string
	// CaptureEvery uploads a packet capture plus SoMeta records for every
	// Nth download test of each campaign (0 disables; captures are the
	// heaviest artifact). Captures never feed back into measurements, so
	// results are bit-identical at any setting.
	CaptureEvery int
	// TracerouteEvery runs follow-up traceroutes per server every N
	// campaign days (0 disables).
	TracerouteEvery int
	// MaxMemoryMB budgets the resident footprint of campaign records
	// (0 = unbounded). A campaign whose raw record slice would exceed half
	// the budget streams its records through a compressed columnar log
	// (analysis.RecordLog) and spills the sealed blocks to disk, so the
	// in-memory footprint is bounded by the log's block size rather than
	// the record count. Analyses read the log back block-at-a-time through
	// CampaignResult.Cursor; every report is byte-identical to the
	// in-memory path.
	MaxMemoryMB int
	// SpillDir is where streaming campaigns place their spilled record
	// logs ("" = the system temp dir). Spill files are unlinked at
	// creation, so they vanish when the process exits no matter how.
	SpillDir string
	// CheckpointDir enables campaign checkpointing: each campaign
	// periodically commits its progress and record stream into
	// <CheckpointDir>/<region>-<kind>/ by atomic rename, and a killed run
	// can be continued with ResumeCampaign (CLI: clasp resume) to produce
	// output byte-identical to a never-killed run. "" disables.
	CheckpointDir string
	// CheckpointEvery commits a checkpoint every N completed rounds
	// (hours); CheckpointVMHours instead commits once N VM-hours accrue.
	// With CheckpointDir set and both zero, the default is every round.
	CheckpointEvery   int
	CheckpointVMHours int
	// Substrate injects a pre-built topology and router instead of
	// generating them — the fleet path, where concurrent engines share one
	// warmed substrate. The substrate's topology config must match what
	// these options would generate (same Seed and Scale); New enforces
	// this, because a mismatched substrate would silently change results.
	Substrate *Substrate
}

// Substrate is the immutable, shareable half of an engine: the generated
// topology and its BGP router. Both are pure functions of the topology
// config and safe for concurrent use (the router's tree caches fill
// concurrently and deterministically), so any number of engines — and the
// campaigns running on them — can share one substrate with bit-identical
// results. Everything stateful (cloud control plane, cost meters, tsdb
// store, flow caches) stays per-engine.
type Substrate struct {
	Topo   *topology.Topology
	Router *bgp.Router
}

// NewSubstrate generates the shared substrate for a topology config.
func NewSubstrate(cfg topology.Config) (*Substrate, error) {
	topo, err := topology.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: building topology: %w", err)
	}
	return &Substrate{Topo: topo, Router: bgp.NewRouter(topo)}, nil
}

// CLASP is a fully wired platform instance.
type CLASP struct {
	Opts     Options
	Topo     *topology.Topology
	Router   *bgp.Router
	Sim      *netsim.Sim
	Cloud    *cloud.Platform
	Bucket   *cloud.Bucket
	Store    *tsdb.Store
	Mapper   *bdrmap.Mapper
	Resolver *alias.Prober
	Checker  *speedchecker.Platform

	// testCheckpointHook runs after every committed checkpoint; core's
	// resume tests return a sentinel error from it to stop a campaign
	// with a valid checkpoint on disk.
	testCheckpointHook func(orchestrator.Progress) error

	// pool is the engine-wide VM-worker budget: Opts.Parallelism slots
	// shared by every campaign this engine runs, so concurrent campaigns
	// (report all, costs) together never exceed the requested parallelism.
	// A lone campaign sees an uncontended pool of exactly its own size —
	// behaviour and bytes unchanged.
	pool *orchestrator.WorkerPool

	// Selection memos. The two selection methods are pure functions of the
	// seed, but expensive — at paper scale they dominate `report all`
	// (Table 1, Fig. 7 and the campaigns each re-ran them before this
	// cache). The mutex is held across the computation: pilot scans share
	// bdrmap/alias state, so selections must also never run concurrently.
	selMu    sync.Mutex
	topoSels map[string]*topoSelMemo
	diffSels map[string]*diffSelMemo

	// sched, when non-nil, is the command scheduler coordinating this
	// engine's campaigns; runCampaign reports round completions to it.
	sched *CommandScheduler

	// regionLocks serialize campaigns measuring the same region. VM names
	// (clasp-<region>-<tier>-<i>) and the platform's per-name fault
	// counters are scoped by region only, so a topology and a differential
	// campaign in one region must never deploy concurrently; campaigns in
	// different regions still overlap freely.
	regionMu    sync.Mutex
	regionLocks map[string]*sync.Mutex
}

type topoSelMemo struct {
	sel *selection.TopoResult
	err error
}

type diffSelMemo struct {
	sel    []selection.DiffSelected
	deltas []speedchecker.TierDelta
	err    error
}

// New builds a CLASP instance.
func New(opts Options) (*CLASP, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if _, err := faults.Named(opts.FaultProfile); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tcfg := topology.PaperScaleConfig()
	if opts.TopoConfig != nil {
		tcfg = *opts.TopoConfig
	} else if opts.Scale > 0 {
		tcfg.Scale = opts.Scale
	}
	tcfg.Seed = opts.Seed
	var topo *topology.Topology
	var router *bgp.Router
	if opts.Substrate != nil {
		if !reflect.DeepEqual(opts.Substrate.Topo.Cfg, tcfg) {
			return nil, fmt.Errorf("core: substrate topology config does not match options (substrate seed %d scale %v, options seed %d scale %v)",
				opts.Substrate.Topo.Cfg.Seed, opts.Substrate.Topo.Cfg.Scale, tcfg.Seed, tcfg.Scale)
		}
		topo, router = opts.Substrate.Topo, opts.Substrate.Router
	} else {
		var err error
		topo, err = topology.New(tcfg)
		if err != nil {
			return nil, fmt.Errorf("core: building topology: %w", err)
		}
		router = bgp.NewRouter(topo)
	}
	scfg := netsim.DefaultConfig(opts.Seed)
	if opts.SimConfig != nil {
		scfg = *opts.SimConfig
		scfg.Seed = opts.Seed
	}
	sim := netsim.New(topo, router, scfg)
	platform := cloud.New(topo, sim, cloud.Pricing{})
	// The paper centralised processing and storage in one region.
	bucket, err := platform.CreateBucket("clasp-results", "us-east1")
	if err != nil {
		return nil, fmt.Errorf("core: creating results bucket: %w", err)
	}
	resolver := alias.NewProber(topo, opts.Seed)
	return &CLASP{
		Opts:        opts,
		Topo:        topo,
		Router:      router,
		Sim:         sim,
		Cloud:       platform,
		Bucket:      bucket,
		Store:       tsdb.NewStore(),
		Mapper:      bdrmap.FromTopology(topo, resolver),
		Resolver:    resolver,
		Checker:     speedchecker.New(sim),
		pool:        orchestrator.NewWorkerPool(opts.Parallelism),
		topoSels:    make(map[string]*topoSelMemo),
		diffSels:    make(map[string]*diffSelMemo),
		regionLocks: make(map[string]*sync.Mutex),
	}, nil
}

// lockRegion acquires the region's campaign lock and returns its release.
func (c *CLASP) lockRegion(region string) func() {
	c.regionMu.Lock()
	mu, ok := c.regionLocks[region]
	if !ok {
		mu = &sync.Mutex{}
		c.regionLocks[region] = mu
	}
	c.regionMu.Unlock()
	mu.Lock()
	return mu.Unlock
}

// SelectTopologyServers runs the topology-based method for one region,
// applying the region's budget from RegionBudgets. The result is memoized
// per region for the engine's lifetime — the selection is a pure function
// of the seed (ResumeCampaign has always relied on that), and one `report
// all` used to recompute the same regions for Table 1, Fig. 7 and the
// campaigns. Concurrent callers for any regions serialize on one mutex,
// because the pilot scans share bdrmap/alias state.
func (c *CLASP) SelectTopologyServers(region string) (*selection.TopoResult, error) {
	c.selMu.Lock()
	defer c.selMu.Unlock()
	if m, ok := c.topoSels[region]; ok {
		return m.sel, m.err
	}
	sel, err := selection.TopologyBased(c.Sim, c.Mapper, selection.TopoParams{
		Region: region,
		Budget: RegionBudgets[region],
		Seed:   c.Opts.Seed,
	})
	c.topoSels[region] = &topoSelMemo{sel: sel, err: err}
	return sel, err
}

// SelectDifferentialServers runs the preliminary latency scan and the
// differential-based method for one region. minSamples scales with the
// topology (the paper's >= 100 rule assumes Speedchecker-scale VP counts).
// Like the topology method, results are memoized per (region, minSamples)
// under the selection mutex.
func (c *CLASP) SelectDifferentialServers(region string, minSamples int) ([]selection.DiffSelected, []speedchecker.TierDelta, error) {
	if minSamples <= 0 {
		minSamples = 100
	}
	c.selMu.Lock()
	defer c.selMu.Unlock()
	key := fmt.Sprintf("%s/%d", region, minSamples)
	if m, ok := c.diffSels[key]; ok {
		return m.sel, m.deltas, m.err
	}
	sel, deltas, err := c.selectDifferentialServers(region, minSamples)
	c.diffSels[key] = &diffSelMemo{sel: sel, deltas: deltas, err: err}
	return sel, deltas, err
}

func (c *CLASP) selectDifferentialServers(region string, minSamples int) ([]selection.DiffSelected, []speedchecker.TierDelta, error) {
	aggs := c.Checker.RunPreliminary(speedchecker.Params{
		Regions:    []string{region},
		MinSamples: minSamples,
		Start:      CampaignStart.Add(-30 * 24 * time.Hour),
	})
	deltas := speedchecker.Deltas(aggs)
	target := 15
	if region == "europe-west1" {
		target = 17
	}
	sel, err := selection.DifferentialBased(c.Topo, deltas, selection.DiffParams{
		Region:     region,
		Target:     target,
		MinSamples: minSamples,
	})
	if err != nil {
		return nil, nil, err
	}
	return sel, deltas, nil
}

// CampaignResult bundles a campaign's records with its selection and
// orchestration report. Exactly one of Records and Log is populated:
// Records for in-memory campaigns (the default), Log when the campaign
// exceeded the Options.MaxMemoryMB budget and streamed its records into a
// compressed, disk-spilled columnar log. Analyses should read through
// Cursor, which hides the difference.
type CampaignResult struct {
	Region   string
	Records  []analysis.Measurement
	Log      *analysis.RecordLog
	Report   *orchestrator.Report
	Selected []*topology.Server

	// Prep holds the incrementally built per-pair series and day
	// partitions, fed record-by-record during the campaign's emit phase so
	// grouping and partitioning overlap measurement. nil for streaming
	// (memory-budgeted) campaigns, which trade the prepared views for the
	// bounded footprint; analyses fall back to the cursor kernels.
	Prep *analysis.CampaignPrep
}

// PreparedSeries returns the incrementally grouped per-pair series for a
// (direction, tier) when the campaign built them — identical to
// analysis.GroupSeriesWithServerCursor over Cursor(), which is the
// fallback callers run when ok is false.
func (r *CampaignResult) PreparedSeries(dir netsim.Direction, tier bgp.Tier) ([]analysis.SeriesWithServer, bool) {
	return r.Prep.Series(dir, tier)
}

// PreparedPartitions returns the incrementally built day partitions for a
// download (direction, tier), index-aligned with PreparedSeries. Each
// equals congestion.NewPartition of the corresponding series.
func (r *CampaignResult) PreparedPartitions(dir netsim.Direction, tier bgp.Tier) ([]*congestion.Partition, bool) {
	return r.Prep.Partitions(dir, tier)
}

// SeriesAndPartitions returns the campaign's per-pair series and their
// index-aligned day partitions for a (direction, tier), from the prepared
// incremental views when the campaign built them and from the cursor
// kernels otherwise. Both paths produce identical values, so analyses can
// consume whichever is available without changing output.
func (r *CampaignResult) SeriesAndPartitions(dir netsim.Direction, tier bgp.Tier) ([]analysis.SeriesWithServer, []*congestion.Partition) {
	sw, ok := r.PreparedSeries(dir, tier)
	if !ok {
		sw = analysis.GroupSeriesWithServerCursor(r.Cursor(), dir, tier)
	} else if parts, ok := r.PreparedPartitions(dir, tier); ok {
		return sw, parts
	}
	parts := make([]*congestion.Partition, len(sw))
	for i := range sw {
		parts[i] = congestion.NewPartition(sw[i].Series)
	}
	return sw, parts
}

// Cursor returns a fresh replayable cursor over the campaign's records in
// delivery order. Cursors are independent — concurrent analysis workers
// each open their own — and identical for the in-memory and streaming
// representations (the record log decodes losslessly).
func (r *CampaignResult) Cursor() analysis.Cursor {
	if r.Log != nil {
		return r.Log.Cursor()
	}
	return analysis.NewSliceCursor(r.Records)
}

// NumRecords returns the number of measurement records the campaign
// produced, whichever representation holds them.
func (r *CampaignResult) NumRecords() int {
	if r.Log != nil {
		return r.Log.Len()
	}
	return len(r.Records)
}

// FirstRecord returns the first delivered record (zero value when empty).
func (r *CampaignResult) FirstRecord() analysis.Measurement {
	if r.Log != nil {
		return r.Log.First()
	}
	if len(r.Records) == 0 {
		return analysis.Measurement{}
	}
	return r.Records[0]
}

// LastRecord returns the last delivered record (zero value when empty).
func (r *CampaignResult) LastRecord() analysis.Measurement {
	if r.Log != nil {
		return r.Log.Last()
	}
	if len(r.Records) == 0 {
		return analysis.Measurement{}
	}
	return r.Records[len(r.Records)-1]
}

// Close releases the spill file behind a streaming campaign's record log;
// it is a no-op for in-memory results. Long-lived processes that discard
// results should call it; short-lived CLI runs may rely on process exit
// (spill files are unlinked at creation).
func (r *CampaignResult) Close() error {
	if r.Log != nil {
		return r.Log.Close()
	}
	return nil
}

// RunTopologyCampaign selects servers with the topology-based method and
// measures them hourly (premium tier) for the given number of days.
func (c *CLASP) RunTopologyCampaign(region string, days int) (*CampaignResult, *selection.TopoResult, error) {
	p, err := c.PlanTopologyCampaign(region, days)
	if err != nil {
		return nil, nil, err
	}
	res, err := c.RunPlanned(p)
	if err != nil {
		return nil, nil, err
	}
	return res, p.TopoSel, nil
}

// RunDifferentialCampaign selects servers with the differential-based
// method and measures them hourly over both tiers.
func (c *CLASP) RunDifferentialCampaign(region string, days, minSamples int) (*CampaignResult, []selection.DiffSelected, error) {
	p, err := c.PlanDifferentialCampaign(region, days, minSamples)
	if err != nil {
		return nil, nil, err
	}
	res, err := c.RunPlanned(p)
	if err != nil {
		return nil, nil, err
	}
	return res, p.DiffSel, nil
}

// storeIndexLimit bounds how large a campaign still gets indexed into the
// shared time-series store. The store powers interactive queries; bulk
// paper-scale campaigns (millions of records) stay in the returned result
// to keep memory proportional to one campaign.
const storeIndexLimit = 250_000

// measurementBytes is the in-memory size of one analysis.Measurement,
// used to estimate whether a campaign's record slice fits the memory
// budget before running it.
const measurementBytes = 88

// campaignIdentity records what a checkpoint needs to rebuild this
// campaign: the selection method, the campaign shape, and the engine
// options that change results (seed, scale, fault profile, capture and
// traceroute cadence). Parallelism and the memory budget are deliberately
// absent — both may change across a resume without changing output.
func (c *CLASP) campaignIdentity(kind, region string, days, minSamples int) checkpoint.Campaign {
	return checkpoint.Campaign{
		Kind:            kind,
		Region:          region,
		Days:            days,
		Seed:            c.Opts.Seed,
		Scale:           c.Opts.Scale,
		FaultProfile:    c.Opts.FaultProfile,
		CaptureEvery:    c.Opts.CaptureEvery,
		TracerouteEvery: c.Opts.TracerouteEvery,
		MinSamples:      minSamples,
		Every:           c.Opts.CheckpointEvery,
		VMHours:         c.Opts.CheckpointVMHours,
	}
}

// checkpointTarget returns the directory this campaign checkpoints into:
// the loaded checkpoint's own directory on resume (so the resumed run
// keeps committing where it left off), the per-campaign subdirectory of
// Options.CheckpointDir otherwise, or "" when checkpointing is off.
func (c *CLASP) checkpointTarget(camp checkpoint.Campaign, resume *checkpoint.Checkpoint) string {
	if resume != nil {
		return resume.Dir
	}
	if c.Opts.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(c.Opts.CheckpointDir, camp.Region+"-"+camp.Kind)
}

func (c *CLASP) runCampaign(camp checkpoint.Campaign, servers []*topology.Server, tiers []bgp.Tier, resume *checkpoint.Checkpoint) (*CampaignResult, error) {
	region, days := camp.Region, camp.Days
	prof, err := faults.Named(c.Opts.FaultProfile)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	orch := orchestrator.New(c.Sim, c.Cloud, c.Bucket)
	// est is the record-count upper bound the orchestrator plans for; the
	// same estimate gates both the interactive store index and the
	// streaming decision, so the choice is made before any record exists.
	est := len(servers) * days * 24 * 2 * len(tiers)
	var slice *orchestrator.SliceSink
	var logSink *orchestrator.LogSink
	var sink orchestrator.Sink
	if budget := int64(c.Opts.MaxMemoryMB) << 20; budget > 0 && int64(est)*measurementBytes > budget/2 {
		logSink = &orchestrator.LogSink{Log: analysis.NewRecordLog()}
		sink = logSink
	} else {
		slice = &orchestrator.SliceSink{}
		sink = slice
	}
	sinks := orchestrator.MultiSink{sink}
	if est <= storeIndexLimit {
		sinks = append(sinks, &orchestrator.StoreSink{Store: c.Store})
	}
	// In-memory campaigns build their analysis views (per-pair series, day
	// partitions) incrementally from the emit phase, so the grouping work
	// the artifact renderers start from overlaps measurement. Streaming
	// campaigns skip it: the prepared views would hold every sample and
	// defeat the memory budget.
	var prep *analysis.CampaignPrep
	if slice != nil {
		prep = analysis.NewCampaignPrep()
		sinks = append(sinks, orchestrator.SinkFunc(prep.Record))
	}

	// Checkpointing needs the record stream in RecordLog form for the
	// sidecar: streaming campaigns reuse their primary log, slice
	// campaigns tee records into a shadow log.
	var ckWriter *checkpoint.Writer
	if dir := c.checkpointTarget(camp, resume); dir != "" {
		if camp.Every <= 0 && camp.VMHours <= 0 {
			camp.Every = 1
		}
		ckLog := analysis.NewRecordLog()
		if logSink != nil {
			ckLog = logSink.Log
		} else {
			sinks = append(sinks, &orchestrator.LogSink{Log: ckLog})
		}
		ckWriter, err = checkpoint.NewWriter(dir, camp, ckLog)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	cfg := orchestrator.Config{
		Region:          region,
		Servers:         servers,
		Tiers:           tiers,
		Start:           CampaignStart,
		Days:            days,
		Seed:            c.Opts.Seed,
		Parallelism:     c.Opts.Parallelism,
		CaptureEvery:    c.Opts.CaptureEvery,
		TracerouteEvery: c.Opts.TracerouteEvery,
		Faults:          prof,
		Workers:         c.pool,
	}
	if s := c.sched; s != nil {
		cfg.OnRound = s.roundDone
	}
	if ckWriter != nil {
		cfg.CheckpointEvery = camp.Every
		cfg.CheckpointVMHours = camp.VMHours
		hook := c.testCheckpointHook
		cfg.OnCheckpoint = func(p orchestrator.Progress) error {
			if err := ckWriter.Commit(p); err != nil {
				return err
			}
			if hook != nil {
				return hook(p)
			}
			return nil
		}
	}
	if resume != nil {
		// Replay the checkpointed records through the same sinks a live
		// round's emit phase feeds, rebuilding the record slice/log, the
		// store index and the next checkpoint's sidecar in one pass; the
		// orchestrator then re-executes only from the watermark. Egress is
		// re-metered per replayed record with the emit phase's formula, so
		// a resumed `costs` bills the same transfers as an uninterrupted
		// run.
		if err := resume.Replay(func(m analysis.Measurement) {
			sinks.Record(m)
			c.Cloud.RecordEgress(m.Tier, orchestrator.TestEgressBytes(m, 0))
		}); err != nil {
			return nil, fmt.Errorf("core: resuming campaign in %s: %w", region, err)
		}
		prog := resume.Meta.Progress
		cfg.Resume = &prog
	}
	// The deploy/measure/teardown window holds the region lock: VM names
	// and the platform's per-name fault counters are region-scoped, so two
	// campaigns in one region must not hold live VMs at the same time.
	unlock := c.lockRegion(region)
	rep, err := orch.Run(cfg, sinks)
	unlock()
	if err != nil {
		return nil, fmt.Errorf("core: campaign in %s: %w", region, err)
	}
	if prep != nil {
		prep.Finish()
	}
	res := &CampaignResult{
		Region:   region,
		Report:   rep,
		Selected: servers,
		Prep:     prep,
	}
	if logSink != nil {
		// Streaming mode holds only compressed blocks; spilling them moves
		// even those to disk, so the result's resident footprint is a few
		// cursor batches regardless of campaign size.
		if err := logSink.Log.Spill(c.Opts.SpillDir); err != nil {
			return nil, fmt.Errorf("core: spilling campaign records in %s: %w", region, err)
		}
		res.Log = logSink.Log
	} else {
		res.Records = slice.Out
	}
	return res, nil
}

// ResumeOptions returns the engine options a resumed campaign requires to
// reproduce the original run. Callers overlay the free runtime knobs —
// Parallelism, MaxMemoryMB, SpillDir — before core.New; those may differ
// from the killed run without changing output.
func ResumeOptions(camp checkpoint.Campaign) Options {
	return Options{
		Seed:            camp.Seed,
		Scale:           camp.Scale,
		FaultProfile:    camp.FaultProfile,
		CaptureEvery:    camp.CaptureEvery,
		TracerouteEvery: camp.TracerouteEvery,
	}
}

// ResumeCampaign continues a checkpointed campaign to completion on this
// engine and returns the same result an uninterrupted run would have: the
// server selection is re-run (it is a pure function of the seed), the
// checkpoint's records are replayed into fresh sinks, and the remaining
// rounds re-execute from the watermark. The engine must be built with
// options matching the checkpoint's campaign identity (see ResumeOptions);
// new checkpoints keep committing into the checkpoint's own directory.
func (c *CLASP) ResumeCampaign(ck *checkpoint.Checkpoint) (*CampaignResult, error) {
	camp := ck.Meta.Campaign
	if err := c.checkCampaignIdentity(camp); err != nil {
		return nil, err
	}
	p, err := c.PlanRef(CampaignRef{Kind: camp.Kind, Region: camp.Region, Days: camp.Days, MinSamples: camp.MinSamples})
	if err != nil {
		return nil, err
	}
	// Keep the checkpoint's own identity (it carries the cadences the
	// killed run committed with) and its directory for further commits.
	p.Camp = camp
	p.ck = ck
	return c.RunPlanned(p)
}

// normalizeProfile folds the two spellings of the fault-free profile.
func normalizeProfile(p string) string {
	if p == "" {
		return "none"
	}
	return p
}
