// Package alias resolves router interface aliases with the shared-IP-ID
// counter technique (MIDAR-style): interfaces of one router stamp outgoing
// packets from a single monotonically increasing IP-ID counter, so probes
// to two aliases interleave into one monotonic sequence, while probes to
// different routers do not.
//
// The probe side is simulated against the topology's ground-truth routers;
// the resolution algorithm itself (monotonic-interleaving test + transitive
// grouping) is the real inference CLASP's bdrmap stage depends on.
package alias

import (
	"net/netip"
	"sort"

	"github.com/clasp-measurement/clasp/internal/topology"
)

// Prober answers IP-ID probes for router interface addresses.
type Prober struct {
	topo *topology.Topology
	seed int64
}

// NewProber creates an alias prober over the topology's routers.
func NewProber(t *topology.Topology, seed int64) *Prober {
	return &Prober{topo: t, seed: seed}
}

// Probe sends one IP-ID probe to addr at virtual time tick and returns the
// IP-ID. ok is false when the address is not a responsive router interface.
func (p *Prober) Probe(addr netip.Addr, tick int) (uint16, bool) {
	r := p.topo.RouterOf(addr)
	if r < 0 {
		return 0, false
	}
	// Router counter: per-router base and velocity, advancing with time.
	base := hashU64(p.seed, uint64(r), 0x1) % 40000
	velocity := 3 + hashU64(p.seed, uint64(r), 0x2)%40
	// Small per-probe increment noise from other traffic.
	jitter := hashU64(p.seed, uint64(r), uint64(tick), 0x3) % 3
	return uint16(base + velocity*uint64(tick) + jitter), true
}

// sample is one observation in a probe series.
type sample struct {
	tick int
	id   uint16
}

// Resolve groups candidate interface addresses into alias sets. It probes
// each candidate in an interleaved schedule and merges pairs whose combined
// IP-ID series stays monotonic (modulo wraparound).
func (p *Prober) Resolve(candidates []netip.Addr) [][]netip.Addr {
	// Deduplicate and keep responsive candidates only.
	seen := make(map[netip.Addr]bool)
	var addrs []netip.Addr
	for _, a := range candidates {
		if !seen[a] {
			seen[a] = true
			if _, ok := p.Probe(a, 0); ok {
				addrs = append(addrs, a)
			}
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })

	// Interleaved probing: for each address, collect a short series at
	// staggered ticks.
	const rounds = 5
	series := make(map[netip.Addr][]sample, len(addrs))
	for round := 0; round < rounds; round++ {
		for i, a := range addrs {
			tick := round*len(addrs)*2 + i*2
			if id, ok := p.Probe(a, tick); ok {
				series[a] = append(series[a], sample{tick: tick, id: id})
			}
		}
	}

	// Union-find over candidates.
	parent := make(map[netip.Addr]netip.Addr, len(addrs))
	var find func(a netip.Addr) netip.Addr
	find = func(a netip.Addr) netip.Addr {
		if parent[a] != a {
			parent[a] = find(parent[a])
		}
		return parent[a]
	}
	for _, a := range addrs {
		parent[a] = a
	}
	union := func(a, b netip.Addr) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Pairwise shared-counter test. O(n^2) pairs, as in MIDAR's
	// estimation stage; candidate sets here are per-neighbor and small.
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			if sharedCounter(append(append([]sample(nil), series[addrs[i]]...), series[addrs[j]]...)) {
				union(addrs[i], addrs[j])
			}
		}
	}

	groups := make(map[netip.Addr][]netip.Addr)
	for _, a := range addrs {
		r := find(a)
		groups[r] = append(groups[r], a)
	}
	out := make([][]netip.Addr, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].Compare(g[j]) < 0 })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Compare(out[j][0]) < 0 })
	return out
}

// sharedCounter reports whether the combined sample series is consistent
// with a single linearly advancing IP-ID counter: after estimating the
// counter velocity from the first and last observations, every sample must
// sit within a small tolerance of the fitted line (allowing 16-bit
// wraparound). Interfaces of one router pass; two routers with independent
// bases and velocities essentially never do.
func sharedCounter(samples []sample) bool {
	if len(samples) < 4 {
		return false
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].tick < samples[j].tick })
	first, last := samples[0], samples[len(samples)-1]
	dt := last.tick - first.tick
	if dt <= 0 {
		return false
	}
	span := int(uint16(last.id - first.id)) // wraparound-safe forward delta
	velocity := float64(span) / float64(dt)
	const maxVelocity = 200 // routers increment far slower per tick
	if velocity > maxVelocity {
		return false
	}
	const tolerance = 24 // counter jitter from cross traffic
	for _, s := range samples {
		predicted := velocity * float64(s.tick-first.tick)
		observed := float64(int(uint16(s.id - first.id)))
		diff := observed - predicted
		if diff < -tolerance || diff > tolerance {
			return false
		}
	}
	return true
}

func hashU64(seed int64, keys ...uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(seed))
	for _, k := range keys {
		mix(k)
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return h
}
