package alias

import (
	"net/netip"
	"testing"

	"github.com/clasp-measurement/clasp/internal/topology"
)

func testSetup(t *testing.T) (*topology.Topology, *Prober) {
	t.Helper()
	topo, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo, NewProber(topo, 3)
}

func TestProbeRespondsForRouterInterfaces(t *testing.T) {
	topo, p := testSetup(t)
	l := topo.Links()[0]
	if _, ok := p.Probe(l.FarIP, 0); !ok {
		t.Error("far IP did not respond to alias probe")
	}
	if _, ok := p.Probe(netip.MustParseAddr("203.0.113.5"), 0); ok {
		t.Error("unknown address responded")
	}
}

func TestProbeCounterMonotonic(t *testing.T) {
	topo, p := testSetup(t)
	l := topo.Links()[0]
	prev := uint16(0)
	for tick := 0; tick < 50; tick += 5 {
		id, ok := p.Probe(l.FarIP, tick)
		if !ok {
			t.Fatal("probe failed")
		}
		if tick > 0 {
			delta := uint16(id - prev)
			if delta == 0 || delta > 1000 {
				t.Errorf("tick %d: counter moved by %d", tick, delta)
			}
		}
		prev = id
	}
}

func TestAliasesShareCounter(t *testing.T) {
	topo, p := testSetup(t)
	// Find a router with multiple interfaces on interdomain links.
	var multi []netip.Addr
	for _, l := range topo.Links() {
		aliases := topo.RouterAliases(l.FarRouter)
		links := 0
		for _, a := range aliases {
			for _, m := range topo.Links() {
				if m.FarIP == a {
					links++
				}
			}
		}
		if links >= 2 {
			multi = aliases
			break
		}
	}
	if multi == nil {
		t.Skip("no multi-link router in small topology")
	}
	a1, _ := p.Probe(multi[0], 10)
	a2, _ := p.Probe(multi[1], 11)
	// Counter advanced by ~velocity between ticks 10 and 11.
	delta := uint16(a2 - a1)
	if delta > 200 {
		t.Errorf("same-router interfaces returned distant IDs: %d", delta)
	}
}

func TestResolveGroupsGroundTruth(t *testing.T) {
	topo, p := testSetup(t)
	// Pick one neighbor with several links and alias-resolve its far IPs.
	var nb topology.ASN
	for _, n := range topo.CloudNeighbors() {
		if len(topo.LinksOf(n)) >= 4 {
			nb = n
			break
		}
	}
	if nb == 0 {
		t.Skip("no neighbor with >= 4 links")
	}
	var candidates []netip.Addr
	truth := make(map[netip.Addr]topology.RouterID)
	for _, l := range topo.LinksOf(nb) {
		candidates = append(candidates, l.FarIP)
		truth[l.FarIP] = l.FarRouter
	}
	groups := p.Resolve(candidates)

	// Evaluate pairwise precision/recall against ground truth.
	sameGroup := func(a, b netip.Addr) bool {
		for _, g := range groups {
			ina, inb := false, false
			for _, ip := range g {
				if ip == a {
					ina = true
				}
				if ip == b {
					inb = true
				}
			}
			if ina || inb {
				return ina && inb
			}
		}
		return false
	}
	tp, fp, fn := 0, 0, 0
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			same := truth[candidates[i]] == truth[candidates[j]]
			got := sameGroup(candidates[i], candidates[j])
			switch {
			case same && got:
				tp++
			case !same && got:
				fp++
			case same && !got:
				fn++
			}
		}
	}
	if tp+fn > 0 {
		recall := float64(tp) / float64(tp+fn)
		if recall < 0.9 {
			t.Errorf("alias recall %.2f (tp=%d fn=%d)", recall, tp, fn)
		}
	}
	if tp+fp > 0 {
		precision := float64(tp) / float64(tp+fp)
		if precision < 0.8 {
			t.Errorf("alias precision %.2f (tp=%d fp=%d)", precision, tp, fp)
		}
	}
}

func TestResolveAllNeighborsNoCrossRouterMerges(t *testing.T) {
	topo, p := testSetup(t)
	merged, total := 0, 0
	for _, nb := range topo.CloudNeighbors() {
		links := topo.LinksOf(nb)
		if len(links) < 2 {
			continue
		}
		var candidates []netip.Addr
		truth := make(map[netip.Addr]topology.RouterID)
		for _, l := range links {
			candidates = append(candidates, l.FarIP)
			truth[l.FarIP] = l.FarRouter
		}
		for _, g := range p.Resolve(candidates) {
			total++
			routers := make(map[topology.RouterID]bool)
			for _, ip := range g {
				routers[truth[ip]] = true
			}
			if len(routers) > 1 {
				merged++
			}
		}
	}
	if total == 0 {
		t.Skip("no resolvable neighbors")
	}
	if frac := float64(merged) / float64(total); frac > 0.1 {
		t.Errorf("%.0f%% of alias groups merged distinct routers", frac*100)
	}
}

func TestResolveHandlesUnresponsive(t *testing.T) {
	_, p := testSetup(t)
	groups := p.Resolve([]netip.Addr{
		netip.MustParseAddr("203.0.113.1"),
		netip.MustParseAddr("203.0.113.2"),
	})
	if len(groups) != 0 {
		t.Errorf("unresponsive candidates produced %d groups", len(groups))
	}
}

func TestResolveDeterministic(t *testing.T) {
	topo, p := testSetup(t)
	var candidates []netip.Addr
	for _, l := range topo.Links()[:12] {
		candidates = append(candidates, l.FarIP)
	}
	a := p.Resolve(candidates)
	b := p.Resolve(candidates)
	if len(a) != len(b) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic group size")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic group contents")
			}
		}
	}
}
