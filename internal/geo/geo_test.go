package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	db := DefaultDB()
	la, _ := db.Lookup("Los Angeles")
	ny, _ := db.Lookup("New York")
	d := DistanceKm(la.Coord(), ny.Coord())
	// Great-circle LA-NYC is ~3940 km.
	if d < 3800 || d > 4100 {
		t.Errorf("LA-NYC distance = %.0f km, want ~3940", d)
	}
	// Same point is zero.
	if z := DistanceKm(la.Coord(), la.Coord()); z != 0 {
		t.Errorf("self distance = %v", z)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0 && d1 <= 20100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func clampLat(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 90)
}

func clampLon(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 180)
}

func TestPropagationDelay(t *testing.T) {
	// 1000 km with 1.5x stretch at 200 km/ms = 7.5 ms one-way.
	if d := PropagationDelayMs(1000); math.Abs(d-7.5) > 1e-9 {
		t.Errorf("PropagationDelayMs(1000) = %v, want 7.5", d)
	}
	if r := RTTMs(Coord{0, 0}, Coord{0, 0}); r != 0 {
		t.Errorf("RTT of same point = %v", r)
	}
}

func TestRTTCrossCountry(t *testing.T) {
	db := DefaultDB()
	sf, _ := db.Lookup("San Francisco")
	ny, _ := db.Lookup("New York")
	rtt := RTTMs(sf.Coord(), ny.Coord())
	// Real SF-NYC RTT is ~60-70 ms; our model should land in a plausible band.
	if rtt < 40 || rtt > 90 {
		t.Errorf("SF-NYC RTT = %.1f ms, want 40-90", rtt)
	}
}

func TestDefaultDBIntegrity(t *testing.T) {
	db := DefaultDB()
	if db.Len() < 150 {
		t.Errorf("default DB has %d cities, want >= 150", db.Len())
	}
	for _, c := range db.All() {
		if c.Lat < -90 || c.Lat > 90 {
			t.Errorf("%s: bad latitude %v", c.Name, c.Lat)
		}
		if c.Lon < -180 || c.Lon > 180 {
			t.Errorf("%s: bad longitude %v", c.Name, c.Lon)
		}
		if c.UTCOffset < -12 || c.UTCOffset > 14 {
			t.Errorf("%s: bad UTC offset %d", c.Name, c.UTCOffset)
		}
		if c.Pop <= 0 {
			t.Errorf("%s: bad population %d", c.Name, c.Pop)
		}
		if c.Country == "" {
			t.Errorf("%s: missing country", c.Name)
		}
	}
}

func TestRegionHostCitiesPresent(t *testing.T) {
	db := DefaultDB()
	// The cities hosting the paper's GCP regions must exist.
	for _, name := range []string{
		"The Dalles", "Los Angeles", "Las Vegas",
		"Moncks Corner", "Ashburn", "Council Bluffs", "St. Ghislain",
	} {
		if _, ok := db.Lookup(name); !ok {
			t.Errorf("missing region host city %q", name)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	db := DefaultDB()
	if _, ok := db.Lookup("Atlantis"); ok {
		t.Error("Lookup(Atlantis) should miss")
	}
}

func TestNewDBDuplicate(t *testing.T) {
	_, err := NewDB([]City{{Name: "X"}, {Name: "X"}})
	if err == nil {
		t.Error("duplicate city name: want error")
	}
}

func TestInCountrySorted(t *testing.T) {
	db := DefaultDB()
	us := db.InCountry("US")
	if len(us) < 100 {
		t.Errorf("US cities = %d, want >= 100", len(us))
	}
	for i := 1; i < len(us); i++ {
		if us[i].Pop > us[i-1].Pop {
			t.Errorf("InCountry not sorted by population at %d", i)
		}
	}
	if len(db.InCountry("XX")) != 0 {
		t.Error("unknown country should be empty")
	}
}

func TestNearest(t *testing.T) {
	db := DefaultDB()
	// A point in Nevada near Las Vegas.
	c, ok := db.Nearest(Coord{36.1, -115.1})
	if !ok {
		t.Fatal("Nearest returned no city")
	}
	if c.Name != "Las Vegas" && c.Name != "North Las Vegas" && c.Name != "Henderson" {
		t.Errorf("Nearest(Vegas area) = %s", c.Name)
	}
	empty, _ := NewDB(nil)
	if _, ok := empty.Nearest(Coord{0, 0}); ok {
		t.Error("Nearest on empty DB should report not-found")
	}
}

func TestLocalHour(t *testing.T) {
	c := City{UTCOffset: -8} // Pacific
	cases := []struct{ utc, want int }{
		{0, 16}, {8, 0}, {12, 4}, {23, 15},
	}
	for _, cs := range cases {
		if got := c.LocalHour(cs.utc); got != cs.want {
			t.Errorf("LocalHour(%d) = %d, want %d", cs.utc, got, cs.want)
		}
	}
	syd := City{UTCOffset: 10}
	if got := syd.LocalHour(20); got != 6 {
		t.Errorf("Sydney LocalHour(20) = %d, want 6", got)
	}
}

func TestLocalHourProperty(t *testing.T) {
	f := func(utcHour uint8, off int8) bool {
		c := City{UTCOffset: int(off % 15)}
		h := c.LocalHour(int(utcHour % 24))
		return h >= 0 && h < 24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCityString(t *testing.T) {
	c := City{Name: "Austin", Region: "TX", Country: "US"}
	if got := c.String(); got != "Austin, TX, US" {
		t.Errorf("String = %q", got)
	}
	b := City{Name: "Brussels", Country: "BE"}
	if got := b.String(); got != "Brussels, BE" {
		t.Errorf("String = %q", got)
	}
}
