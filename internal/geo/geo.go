// Package geo provides the geographic substrate CLASP needs: a city database
// with coordinates and timezone offsets, great-circle distance, and
// propagation-delay estimation. The paper geolocates speed test servers and
// cloud regions (Fig. 7) and converts measurement timestamps to server-local
// time when computing hourly congestion probability (Fig. 6).
package geo

import (
	"fmt"
	"math"
	"sort"
)

// City is a populated place that can host speed test servers, edge vantage
// points, or cloud regions.
type City struct {
	Name      string  // city name, unique within the database
	Country   string  // ISO-like country code ("US", "BE", "IN", ...)
	Region    string  // state or province code where meaningful
	Lat, Lon  float64 // WGS84 degrees
	UTCOffset int     // standard-time offset from UTC in hours (no DST)
	Pop       int     // approximate metro population, used as a demand weight
}

// Coord is a bare latitude/longitude pair in degrees.
type Coord struct {
	Lat, Lon float64
}

// Coord returns the city's coordinates.
func (c City) Coord() Coord { return Coord{c.Lat, c.Lon} }

// String implements fmt.Stringer.
func (c City) String() string {
	if c.Region != "" {
		return fmt.Sprintf("%s, %s, %s", c.Name, c.Region, c.Country)
	}
	return fmt.Sprintf("%s, %s", c.Name, c.Country)
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two coordinates using
// the haversine formula.
func DistanceKm(a, b Coord) float64 {
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	lat1, lon1 := toRad(a.Lat), toRad(a.Lon)
	lat2, lon2 := toRad(b.Lat), toRad(b.Lon)
	dlat := lat2 - lat1
	dlon := lon2 - lon1
	h := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dlon/2)*math.Sin(dlon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// PropagationDelayMs estimates one-way fibre propagation delay in
// milliseconds for a great-circle distance, using the standard 2/3-c speed of
// light in fibre and a 1.5x path-stretch factor for real cable routes.
func PropagationDelayMs(km float64) float64 {
	const fibreKmPerMs = 200.0 // ~2/3 of c
	const pathStretch = 1.5
	return km * pathStretch / fibreKmPerMs
}

// RTTMs estimates the round-trip propagation time in milliseconds between
// two coordinates.
func RTTMs(a, b Coord) float64 {
	return 2 * PropagationDelayMs(DistanceKm(a, b))
}

// DB is an immutable city database.
type DB struct {
	cities []City
	byName map[string]int
}

// NewDB builds a database from the given cities. Duplicate names are
// rejected so lookups are unambiguous.
func NewDB(cities []City) (*DB, error) {
	db := &DB{
		cities: make([]City, len(cities)),
		byName: make(map[string]int, len(cities)),
	}
	copy(db.cities, cities)
	for i, c := range db.cities {
		if _, dup := db.byName[c.Name]; dup {
			return nil, fmt.Errorf("geo: duplicate city %q", c.Name)
		}
		db.byName[c.Name] = i
	}
	return db, nil
}

// DefaultDB returns the built-in database covering the GCP regions the paper
// deployed in, the US metro areas where speed test servers concentrate, and
// the international cities chosen by the differential-based method.
func DefaultDB() *DB {
	db, err := NewDB(builtinCities)
	if err != nil {
		panic(err) // built-in data is validated by tests
	}
	return db
}

// Lookup returns the city with the given name.
func (db *DB) Lookup(name string) (City, bool) {
	i, ok := db.byName[name]
	if !ok {
		return City{}, false
	}
	return db.cities[i], true
}

// All returns every city, sorted by name. The returned slice is a copy.
func (db *DB) All() []City {
	out := make([]City, len(db.cities))
	copy(out, db.cities)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InCountry returns all cities in the given country, sorted by descending
// population.
func (db *DB) InCountry(country string) []City {
	var out []City
	for _, c := range db.cities {
		if c.Country == country {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pop != out[j].Pop {
			return out[i].Pop > out[j].Pop
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Len returns the number of cities.
func (db *DB) Len() int { return len(db.cities) }

// Nearest returns the city closest to the given coordinate.
func (db *DB) Nearest(p Coord) (City, bool) {
	if len(db.cities) == 0 {
		return City{}, false
	}
	best := db.cities[0]
	bestD := DistanceKm(p, best.Coord())
	for _, c := range db.cities[1:] {
		if d := DistanceKm(p, c.Coord()); d < bestD {
			best, bestD = c, d
		}
	}
	return best, true
}

// LocalHour converts a UTC hour-of-day (0-23) to the city's local hour.
func (c City) LocalHour(utcHour int) int {
	h := (utcHour + c.UTCOffset) % 24
	if h < 0 {
		h += 24
	}
	return h
}

// builtinCities is the embedded city dataset. Populations are approximate
// metro populations used only as relative demand weights in the simulator.
var builtinCities = []City{
	// --- GCP region host cities (paper deployment, Appendix A) ---
	{Name: "The Dalles", Country: "US", Region: "OR", Lat: 45.59, Lon: -121.18, UTCOffset: -8, Pop: 16000},
	{Name: "Los Angeles", Country: "US", Region: "CA", Lat: 34.05, Lon: -118.24, UTCOffset: -8, Pop: 13200000},
	{Name: "Las Vegas", Country: "US", Region: "NV", Lat: 36.17, Lon: -115.14, UTCOffset: -8, Pop: 2300000},
	{Name: "Moncks Corner", Country: "US", Region: "SC", Lat: 33.20, Lon: -80.01, UTCOffset: -5, Pop: 13000},
	{Name: "Ashburn", Country: "US", Region: "VA", Lat: 39.04, Lon: -77.49, UTCOffset: -5, Pop: 44000},
	{Name: "Council Bluffs", Country: "US", Region: "IA", Lat: 41.26, Lon: -95.86, UTCOffset: -6, Pop: 62000},
	{Name: "St. Ghislain", Country: "BE", Lat: 50.45, Lon: 3.82, UTCOffset: 1, Pop: 23000},

	// --- Major US metros (speed test server locations) ---
	{Name: "New York", Country: "US", Region: "NY", Lat: 40.71, Lon: -74.01, UTCOffset: -5, Pop: 19200000},
	{Name: "Chicago", Country: "US", Region: "IL", Lat: 41.88, Lon: -87.63, UTCOffset: -6, Pop: 9500000},
	{Name: "Houston", Country: "US", Region: "TX", Lat: 29.76, Lon: -95.37, UTCOffset: -6, Pop: 7100000},
	{Name: "Phoenix", Country: "US", Region: "AZ", Lat: 33.45, Lon: -112.07, UTCOffset: -7, Pop: 4900000},
	{Name: "Philadelphia", Country: "US", Region: "PA", Lat: 39.95, Lon: -75.17, UTCOffset: -5, Pop: 6200000},
	{Name: "San Antonio", Country: "US", Region: "TX", Lat: 29.42, Lon: -98.49, UTCOffset: -6, Pop: 2600000},
	{Name: "San Diego", Country: "US", Region: "CA", Lat: 32.72, Lon: -117.16, UTCOffset: -8, Pop: 3300000},
	{Name: "Dallas", Country: "US", Region: "TX", Lat: 32.78, Lon: -96.80, UTCOffset: -6, Pop: 7600000},
	{Name: "San Jose", Country: "US", Region: "CA", Lat: 37.34, Lon: -121.89, UTCOffset: -8, Pop: 2000000},
	{Name: "Austin", Country: "US", Region: "TX", Lat: 30.27, Lon: -97.74, UTCOffset: -6, Pop: 2300000},
	{Name: "Jacksonville", Country: "US", Region: "FL", Lat: 30.33, Lon: -81.66, UTCOffset: -5, Pop: 1600000},
	{Name: "San Francisco", Country: "US", Region: "CA", Lat: 37.77, Lon: -122.42, UTCOffset: -8, Pop: 4700000},
	{Name: "Columbus", Country: "US", Region: "OH", Lat: 39.96, Lon: -83.00, UTCOffset: -5, Pop: 2100000},
	{Name: "Indianapolis", Country: "US", Region: "IN", Lat: 39.77, Lon: -86.16, UTCOffset: -5, Pop: 2100000},
	{Name: "Fort Worth", Country: "US", Region: "TX", Lat: 32.76, Lon: -97.33, UTCOffset: -6, Pop: 950000},
	{Name: "Charlotte", Country: "US", Region: "NC", Lat: 35.23, Lon: -80.84, UTCOffset: -5, Pop: 2700000},
	{Name: "Seattle", Country: "US", Region: "WA", Lat: 47.61, Lon: -122.33, UTCOffset: -8, Pop: 4000000},
	{Name: "Denver", Country: "US", Region: "CO", Lat: 39.74, Lon: -104.99, UTCOffset: -7, Pop: 2900000},
	{Name: "Washington", Country: "US", Region: "DC", Lat: 38.91, Lon: -77.04, UTCOffset: -5, Pop: 6300000},
	{Name: "Boston", Country: "US", Region: "MA", Lat: 42.36, Lon: -71.06, UTCOffset: -5, Pop: 4900000},
	{Name: "El Paso", Country: "US", Region: "TX", Lat: 31.76, Lon: -106.49, UTCOffset: -7, Pop: 870000},
	{Name: "Nashville", Country: "US", Region: "TN", Lat: 36.16, Lon: -86.78, UTCOffset: -6, Pop: 2000000},
	{Name: "Detroit", Country: "US", Region: "MI", Lat: 42.33, Lon: -83.05, UTCOffset: -5, Pop: 4300000},
	{Name: "Oklahoma City", Country: "US", Region: "OK", Lat: 35.47, Lon: -97.52, UTCOffset: -6, Pop: 1400000},
	{Name: "Portland", Country: "US", Region: "OR", Lat: 45.52, Lon: -122.68, UTCOffset: -8, Pop: 2500000},
	{Name: "Memphis", Country: "US", Region: "TN", Lat: 35.15, Lon: -90.05, UTCOffset: -6, Pop: 1300000},
	{Name: "Louisville", Country: "US", Region: "KY", Lat: 38.25, Lon: -85.76, UTCOffset: -5, Pop: 1300000},
	{Name: "Baltimore", Country: "US", Region: "MD", Lat: 39.29, Lon: -76.61, UTCOffset: -5, Pop: 2800000},
	{Name: "Milwaukee", Country: "US", Region: "WI", Lat: 43.04, Lon: -87.91, UTCOffset: -6, Pop: 1600000},
	{Name: "Albuquerque", Country: "US", Region: "NM", Lat: 35.08, Lon: -106.65, UTCOffset: -7, Pop: 920000},
	{Name: "Tucson", Country: "US", Region: "AZ", Lat: 32.22, Lon: -110.97, UTCOffset: -7, Pop: 1100000},
	{Name: "Fresno", Country: "US", Region: "CA", Lat: 36.74, Lon: -119.79, UTCOffset: -8, Pop: 1000000},
	{Name: "Sacramento", Country: "US", Region: "CA", Lat: 38.58, Lon: -121.49, UTCOffset: -8, Pop: 2400000},
	{Name: "Kansas City", Country: "US", Region: "MO", Lat: 39.10, Lon: -94.58, UTCOffset: -6, Pop: 2200000},
	{Name: "Atlanta", Country: "US", Region: "GA", Lat: 33.75, Lon: -84.39, UTCOffset: -5, Pop: 6100000},
	{Name: "Omaha", Country: "US", Region: "NE", Lat: 41.26, Lon: -95.93, UTCOffset: -6, Pop: 970000},
	{Name: "Colorado Springs", Country: "US", Region: "CO", Lat: 38.83, Lon: -104.82, UTCOffset: -7, Pop: 760000},
	{Name: "Raleigh", Country: "US", Region: "NC", Lat: 35.78, Lon: -78.64, UTCOffset: -5, Pop: 1400000},
	{Name: "Miami", Country: "US", Region: "FL", Lat: 25.76, Lon: -80.19, UTCOffset: -5, Pop: 6200000},
	{Name: "Virginia Beach", Country: "US", Region: "VA", Lat: 36.85, Lon: -75.98, UTCOffset: -5, Pop: 1800000},
	{Name: "Oakland", Country: "US", Region: "CA", Lat: 37.80, Lon: -122.27, UTCOffset: -8, Pop: 440000},
	{Name: "Minneapolis", Country: "US", Region: "MN", Lat: 44.98, Lon: -93.27, UTCOffset: -6, Pop: 3700000},
	{Name: "Tulsa", Country: "US", Region: "OK", Lat: 36.15, Lon: -95.99, UTCOffset: -6, Pop: 1000000},
	{Name: "Tampa", Country: "US", Region: "FL", Lat: 27.95, Lon: -82.46, UTCOffset: -5, Pop: 3200000},
	{Name: "New Orleans", Country: "US", Region: "LA", Lat: 29.95, Lon: -90.07, UTCOffset: -6, Pop: 1300000},
	{Name: "Wichita", Country: "US", Region: "KS", Lat: 37.69, Lon: -97.34, UTCOffset: -6, Pop: 650000},
	{Name: "Cleveland", Country: "US", Region: "OH", Lat: 41.50, Lon: -81.69, UTCOffset: -5, Pop: 2100000},
	{Name: "Bakersfield", Country: "US", Region: "CA", Lat: 35.37, Lon: -119.02, UTCOffset: -8, Pop: 900000},
	{Name: "Aurora", Country: "US", Region: "CO", Lat: 39.73, Lon: -104.83, UTCOffset: -7, Pop: 390000},
	{Name: "Anaheim", Country: "US", Region: "CA", Lat: 33.84, Lon: -117.91, UTCOffset: -8, Pop: 350000},
	{Name: "Honolulu", Country: "US", Region: "HI", Lat: 21.31, Lon: -157.86, UTCOffset: -10, Pop: 1000000},
	{Name: "Santa Ana", Country: "US", Region: "CA", Lat: 33.75, Lon: -117.87, UTCOffset: -8, Pop: 330000},
	{Name: "Riverside", Country: "US", Region: "CA", Lat: 33.95, Lon: -117.40, UTCOffset: -8, Pop: 4600000},
	{Name: "Corpus Christi", Country: "US", Region: "TX", Lat: 27.80, Lon: -97.40, UTCOffset: -6, Pop: 440000},
	{Name: "Lexington", Country: "US", Region: "KY", Lat: 38.04, Lon: -84.50, UTCOffset: -5, Pop: 520000},
	{Name: "Stockton", Country: "US", Region: "CA", Lat: 37.96, Lon: -121.29, UTCOffset: -8, Pop: 770000},
	{Name: "St. Louis", Country: "US", Region: "MO", Lat: 38.63, Lon: -90.20, UTCOffset: -6, Pop: 2800000},
	{Name: "Pittsburgh", Country: "US", Region: "PA", Lat: 40.44, Lon: -79.99, UTCOffset: -5, Pop: 2300000},
	{Name: "Saint Paul", Country: "US", Region: "MN", Lat: 44.95, Lon: -93.09, UTCOffset: -6, Pop: 310000},
	{Name: "Cincinnati", Country: "US", Region: "OH", Lat: 39.10, Lon: -84.51, UTCOffset: -5, Pop: 2200000},
	{Name: "Anchorage", Country: "US", Region: "AK", Lat: 61.22, Lon: -149.90, UTCOffset: -9, Pop: 400000},
	{Name: "Henderson", Country: "US", Region: "NV", Lat: 36.04, Lon: -114.98, UTCOffset: -8, Pop: 320000},
	{Name: "Greensboro", Country: "US", Region: "NC", Lat: 36.07, Lon: -79.79, UTCOffset: -5, Pop: 770000},
	{Name: "Plano", Country: "US", Region: "TX", Lat: 33.02, Lon: -96.70, UTCOffset: -6, Pop: 290000},
	{Name: "Newark", Country: "US", Region: "NJ", Lat: 40.74, Lon: -74.17, UTCOffset: -5, Pop: 310000},
	{Name: "Lincoln", Country: "US", Region: "NE", Lat: 40.81, Lon: -96.68, UTCOffset: -6, Pop: 340000},
	{Name: "Buffalo", Country: "US", Region: "NY", Lat: 42.89, Lon: -78.88, UTCOffset: -5, Pop: 1100000},
	{Name: "Fort Wayne", Country: "US", Region: "IN", Lat: 41.08, Lon: -85.14, UTCOffset: -5, Pop: 430000},
	{Name: "Jersey City", Country: "US", Region: "NJ", Lat: 40.73, Lon: -74.08, UTCOffset: -5, Pop: 290000},
	{Name: "Chula Vista", Country: "US", Region: "CA", Lat: 32.64, Lon: -117.08, UTCOffset: -8, Pop: 280000},
	{Name: "Orlando", Country: "US", Region: "FL", Lat: 28.54, Lon: -81.38, UTCOffset: -5, Pop: 2700000},
	{Name: "St. Petersburg", Country: "US", Region: "FL", Lat: 27.77, Lon: -82.64, UTCOffset: -5, Pop: 270000},
	{Name: "Norfolk", Country: "US", Region: "VA", Lat: 36.85, Lon: -76.29, UTCOffset: -5, Pop: 240000},
	{Name: "Chandler", Country: "US", Region: "AZ", Lat: 33.31, Lon: -111.84, UTCOffset: -7, Pop: 280000},
	{Name: "Laredo", Country: "US", Region: "TX", Lat: 27.51, Lon: -99.51, UTCOffset: -6, Pop: 260000},
	{Name: "Madison", Country: "US", Region: "WI", Lat: 43.07, Lon: -89.40, UTCOffset: -6, Pop: 680000},
	{Name: "Durham", Country: "US", Region: "NC", Lat: 35.99, Lon: -78.90, UTCOffset: -5, Pop: 650000},
	{Name: "Lubbock", Country: "US", Region: "TX", Lat: 33.58, Lon: -101.86, UTCOffset: -6, Pop: 320000},
	{Name: "Winston-Salem", Country: "US", Region: "NC", Lat: 36.10, Lon: -80.24, UTCOffset: -5, Pop: 680000},
	{Name: "Garland", Country: "US", Region: "TX", Lat: 32.91, Lon: -96.64, UTCOffset: -6, Pop: 240000},
	{Name: "Glendale", Country: "US", Region: "AZ", Lat: 33.54, Lon: -112.19, UTCOffset: -7, Pop: 250000},
	{Name: "Hialeah", Country: "US", Region: "FL", Lat: 25.86, Lon: -80.28, UTCOffset: -5, Pop: 220000},
	{Name: "Reno", Country: "US", Region: "NV", Lat: 39.53, Lon: -119.81, UTCOffset: -8, Pop: 470000},
	{Name: "Baton Rouge", Country: "US", Region: "LA", Lat: 30.45, Lon: -91.19, UTCOffset: -6, Pop: 870000},
	{Name: "Irvine", Country: "US", Region: "CA", Lat: 33.68, Lon: -117.83, UTCOffset: -8, Pop: 310000},
	{Name: "Chesapeake", Country: "US", Region: "VA", Lat: 36.77, Lon: -76.29, UTCOffset: -5, Pop: 250000},
	{Name: "Irving", Country: "US", Region: "TX", Lat: 32.81, Lon: -96.95, UTCOffset: -6, Pop: 240000},
	{Name: "Scottsdale", Country: "US", Region: "AZ", Lat: 33.49, Lon: -111.93, UTCOffset: -7, Pop: 260000},
	{Name: "North Las Vegas", Country: "US", Region: "NV", Lat: 36.20, Lon: -115.12, UTCOffset: -8, Pop: 260000},
	{Name: "Fremont", Country: "US", Region: "CA", Lat: 37.55, Lon: -121.99, UTCOffset: -8, Pop: 230000},
	{Name: "Boise", Country: "US", Region: "ID", Lat: 43.62, Lon: -116.21, UTCOffset: -7, Pop: 750000},
	{Name: "Richmond", Country: "US", Region: "VA", Lat: 37.54, Lon: -77.44, UTCOffset: -5, Pop: 1300000},
	{Name: "Salt Lake City", Country: "US", Region: "UT", Lat: 40.76, Lon: -111.89, UTCOffset: -7, Pop: 1200000},
	{Name: "Spokane", Country: "US", Region: "WA", Lat: 47.66, Lon: -117.43, UTCOffset: -8, Pop: 570000},
	{Name: "Des Moines", Country: "US", Region: "IA", Lat: 41.59, Lon: -93.62, UTCOffset: -6, Pop: 700000},
	{Name: "Grass Valley", Country: "US", Region: "CA", Lat: 39.22, Lon: -121.06, UTCOffset: -8, Pop: 13000},
	{Name: "Billings", Country: "US", Region: "MT", Lat: 45.78, Lon: -108.50, UTCOffset: -7, Pop: 120000},
	{Name: "Fargo", Country: "US", Region: "ND", Lat: 46.88, Lon: -96.79, UTCOffset: -6, Pop: 250000},
	{Name: "Sioux Falls", Country: "US", Region: "SD", Lat: 43.55, Lon: -96.73, UTCOffset: -6, Pop: 280000},
	{Name: "Little Rock", Country: "US", Region: "AR", Lat: 34.75, Lon: -92.29, UTCOffset: -6, Pop: 750000},
	{Name: "Jackson", Country: "US", Region: "MS", Lat: 32.30, Lon: -90.18, UTCOffset: -6, Pop: 590000},
	{Name: "Birmingham", Country: "US", Region: "AL", Lat: 33.52, Lon: -86.80, UTCOffset: -6, Pop: 1100000},
	{Name: "Knoxville", Country: "US", Region: "TN", Lat: 35.96, Lon: -83.92, UTCOffset: -5, Pop: 890000},
	{Name: "Charleston", Country: "US", Region: "SC", Lat: 32.78, Lon: -79.93, UTCOffset: -5, Pop: 800000},
	{Name: "Savannah", Country: "US", Region: "GA", Lat: 32.08, Lon: -81.09, UTCOffset: -5, Pop: 400000},
	{Name: "Tallahassee", Country: "US", Region: "FL", Lat: 30.44, Lon: -84.28, UTCOffset: -5, Pop: 390000},
	{Name: "Mobile", Country: "US", Region: "AL", Lat: 30.69, Lon: -88.04, UTCOffset: -6, Pop: 430000},
	{Name: "Shreveport", Country: "US", Region: "LA", Lat: 32.53, Lon: -93.75, UTCOffset: -6, Pop: 390000},
	{Name: "Amarillo", Country: "US", Region: "TX", Lat: 35.22, Lon: -101.83, UTCOffset: -6, Pop: 270000},
	{Name: "Eugene", Country: "US", Region: "OR", Lat: 44.05, Lon: -123.09, UTCOffset: -8, Pop: 380000},
	{Name: "Tacoma", Country: "US", Region: "WA", Lat: 47.25, Lon: -122.44, UTCOffset: -8, Pop: 220000},
	{Name: "Provo", Country: "US", Region: "UT", Lat: 40.23, Lon: -111.66, UTCOffset: -7, Pop: 650000},
	{Name: "Santa Rosa", Country: "US", Region: "CA", Lat: 38.44, Lon: -122.71, UTCOffset: -8, Pop: 180000},
	{Name: "Bend", Country: "US", Region: "OR", Lat: 44.06, Lon: -121.32, UTCOffset: -8, Pop: 100000},
	{Name: "Missoula", Country: "US", Region: "MT", Lat: 46.87, Lon: -113.99, UTCOffset: -7, Pop: 75000},
	{Name: "Flagstaff", Country: "US", Region: "AZ", Lat: 35.20, Lon: -111.65, UTCOffset: -7, Pop: 76000},
	{Name: "Rochester", Country: "US", Region: "NY", Lat: 43.16, Lon: -77.61, UTCOffset: -5, Pop: 1100000},
	{Name: "Syracuse", Country: "US", Region: "NY", Lat: 43.05, Lon: -76.15, UTCOffset: -5, Pop: 650000},
	{Name: "Albany", Country: "US", Region: "NY", Lat: 42.65, Lon: -73.75, UTCOffset: -5, Pop: 880000},
	{Name: "Hartford", Country: "US", Region: "CT", Lat: 41.76, Lon: -72.67, UTCOffset: -5, Pop: 1200000},
	{Name: "Providence", Country: "US", Region: "RI", Lat: 41.82, Lon: -71.41, UTCOffset: -5, Pop: 1600000},
	{Name: "Manchester", Country: "US", Region: "NH", Lat: 42.99, Lon: -71.46, UTCOffset: -5, Pop: 110000},
	{Name: "Burlington", Country: "US", Region: "VT", Lat: 44.48, Lon: -73.21, UTCOffset: -5, Pop: 220000},
	{Name: "Portland ME", Country: "US", Region: "ME", Lat: 43.66, Lon: -70.26, UTCOffset: -5, Pop: 540000},

	// --- European cities (europe-west1 neighbourhood + differential picks) ---
	{Name: "Brussels", Country: "BE", Lat: 50.85, Lon: 4.35, UTCOffset: 1, Pop: 2100000},
	{Name: "Antwerp", Country: "BE", Lat: 51.22, Lon: 4.40, UTCOffset: 1, Pop: 1200000},
	{Name: "Amsterdam", Country: "NL", Lat: 52.37, Lon: 4.90, UTCOffset: 1, Pop: 2500000},
	{Name: "Rotterdam", Country: "NL", Lat: 51.92, Lon: 4.48, UTCOffset: 1, Pop: 1000000},
	{Name: "Paris", Country: "FR", Lat: 48.86, Lon: 2.35, UTCOffset: 1, Pop: 11000000},
	{Name: "Lyon", Country: "FR", Lat: 45.76, Lon: 4.84, UTCOffset: 1, Pop: 2300000},
	{Name: "London", Country: "GB", Lat: 51.51, Lon: -0.13, UTCOffset: 0, Pop: 9500000},
	{Name: "Manchester UK", Country: "GB", Lat: 53.48, Lon: -2.24, UTCOffset: 0, Pop: 2800000},
	{Name: "Frankfurt", Country: "DE", Lat: 50.11, Lon: 8.68, UTCOffset: 1, Pop: 2300000},
	{Name: "Berlin", Country: "DE", Lat: 52.52, Lon: 13.40, UTCOffset: 1, Pop: 3700000},
	{Name: "Munich", Country: "DE", Lat: 48.14, Lon: 11.58, UTCOffset: 1, Pop: 1500000},
	{Name: "Madrid", Country: "ES", Lat: 40.42, Lon: -3.70, UTCOffset: 1, Pop: 6700000},
	{Name: "Barcelona", Country: "ES", Lat: 41.39, Lon: 2.17, UTCOffset: 1, Pop: 5600000},
	{Name: "Milan", Country: "IT", Lat: 45.46, Lon: 9.19, UTCOffset: 1, Pop: 3200000},
	{Name: "Rome", Country: "IT", Lat: 41.90, Lon: 12.50, UTCOffset: 1, Pop: 4300000},
	{Name: "Zurich", Country: "CH", Lat: 47.37, Lon: 8.54, UTCOffset: 1, Pop: 1400000},
	{Name: "Vienna", Country: "AT", Lat: 48.21, Lon: 16.37, UTCOffset: 1, Pop: 1900000},
	{Name: "Warsaw", Country: "PL", Lat: 52.23, Lon: 21.01, UTCOffset: 1, Pop: 1800000},
	{Name: "Prague", Country: "CZ", Lat: 50.08, Lon: 14.44, UTCOffset: 1, Pop: 1300000},
	{Name: "Stockholm", Country: "SE", Lat: 59.33, Lon: 18.07, UTCOffset: 1, Pop: 1600000},
	{Name: "Copenhagen", Country: "DK", Lat: 55.68, Lon: 12.57, UTCOffset: 1, Pop: 1300000},
	{Name: "Dublin", Country: "IE", Lat: 53.35, Lon: -6.26, UTCOffset: 0, Pop: 1400000},
	{Name: "Lisbon", Country: "PT", Lat: 38.72, Lon: -9.14, UTCOffset: 0, Pop: 2900000},
	{Name: "Helsinki", Country: "FI", Lat: 60.17, Lon: 24.94, UTCOffset: 2, Pop: 1300000},
	{Name: "Oslo", Country: "NO", Lat: 59.91, Lon: 10.75, UTCOffset: 1, Pop: 1000000},
	{Name: "Athens", Country: "GR", Lat: 37.98, Lon: 23.73, UTCOffset: 2, Pop: 3100000},
	{Name: "Bucharest", Country: "RO", Lat: 44.43, Lon: 26.10, UTCOffset: 2, Pop: 1800000},

	// --- Asia-Pacific & other (differential-based picks: India, Australia) ---
	{Name: "Mumbai", Country: "IN", Lat: 19.08, Lon: 72.88, UTCOffset: 5, Pop: 20400000},
	{Name: "Delhi", Country: "IN", Lat: 28.61, Lon: 77.21, UTCOffset: 5, Pop: 31000000},
	{Name: "Bangalore", Country: "IN", Lat: 12.97, Lon: 77.59, UTCOffset: 5, Pop: 12300000},
	{Name: "Chennai", Country: "IN", Lat: 13.08, Lon: 80.27, UTCOffset: 5, Pop: 11000000},
	{Name: "Hyderabad", Country: "IN", Lat: 17.39, Lon: 78.49, UTCOffset: 5, Pop: 10000000},
	{Name: "Sydney", Country: "AU", Lat: -33.87, Lon: 151.21, UTCOffset: 10, Pop: 5300000},
	{Name: "Melbourne", Country: "AU", Lat: -37.81, Lon: 144.96, UTCOffset: 10, Pop: 5100000},
	{Name: "Brisbane", Country: "AU", Lat: -27.47, Lon: 153.03, UTCOffset: 10, Pop: 2600000},
	{Name: "Perth", Country: "AU", Lat: -31.95, Lon: 115.86, UTCOffset: 8, Pop: 2100000},
	{Name: "Singapore", Country: "SG", Lat: 1.35, Lon: 103.82, UTCOffset: 8, Pop: 5700000},
	{Name: "Tokyo", Country: "JP", Lat: 35.68, Lon: 139.69, UTCOffset: 9, Pop: 37400000},
	{Name: "Seoul", Country: "KR", Lat: 37.57, Lon: 126.98, UTCOffset: 9, Pop: 25600000},
	{Name: "Hong Kong", Country: "HK", Lat: 22.32, Lon: 114.17, UTCOffset: 8, Pop: 7500000},
	{Name: "Taipei", Country: "TW", Lat: 25.03, Lon: 121.57, UTCOffset: 8, Pop: 7000000},
	{Name: "Jakarta", Country: "ID", Lat: -6.21, Lon: 106.85, UTCOffset: 7, Pop: 10600000},
	{Name: "Manila", Country: "PH", Lat: 14.60, Lon: 120.98, UTCOffset: 8, Pop: 13500000},
	{Name: "Sao Paulo", Country: "BR", Lat: -23.55, Lon: -46.63, UTCOffset: -3, Pop: 22000000},
	{Name: "Rio de Janeiro", Country: "BR", Lat: -22.91, Lon: -43.17, UTCOffset: -3, Pop: 13500000},
	{Name: "Buenos Aires", Country: "AR", Lat: -34.60, Lon: -58.38, UTCOffset: -3, Pop: 15200000},
	{Name: "Santiago", Country: "CL", Lat: -33.45, Lon: -70.67, UTCOffset: -4, Pop: 6800000},
	{Name: "Mexico City", Country: "MX", Lat: 19.43, Lon: -99.13, UTCOffset: -6, Pop: 21800000},
	{Name: "Toronto", Country: "CA", Lat: 43.65, Lon: -79.38, UTCOffset: -5, Pop: 6200000},
	{Name: "Vancouver", Country: "CA", Lat: 49.28, Lon: -123.12, UTCOffset: -8, Pop: 2600000},
	{Name: "Montreal", Country: "CA", Lat: 45.50, Lon: -73.57, UTCOffset: -5, Pop: 4300000},
	{Name: "Johannesburg", Country: "ZA", Lat: -26.20, Lon: 28.05, UTCOffset: 2, Pop: 5600000},
	{Name: "Dubai", Country: "AE", Lat: 25.20, Lon: 55.27, UTCOffset: 4, Pop: 3400000},
	{Name: "Tel Aviv", Country: "IL", Lat: 32.09, Lon: 34.78, UTCOffset: 2, Pop: 4200000},
	{Name: "Istanbul", Country: "TR", Lat: 41.01, Lon: 28.98, UTCOffset: 3, Pop: 15500000},
	{Name: "Auckland", Country: "NZ", Lat: -36.85, Lon: 174.76, UTCOffset: 12, Pop: 1700000},
}
