// Quickstart: bring up a reduced-scale CLASP platform, run a two-week
// topology-based campaign from us-west1, and print the congestion report —
// the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	clasp "github.com/clasp-measurement/clasp"
)

func main() {
	// A quarter-scale synthetic Internet keeps the quickstart fast while
	// preserving the structure of the full platform (~1.5k interdomain
	// links per region, ~350 US test servers). Parallelism fans each
	// hourly round across 4 concurrent VM workers; the results are
	// bit-identical to a sequential run with the same seed.
	p, err := clasp.New(clasp.Options{Seed: 42, Scale: 0.25, Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regions: %v\n", p.Regions())

	// Select servers with the topology-based method and measure each one
	// hourly for 14 virtual days over the premium tier.
	res, err := p.RunTopologyCampaign("us-west1", 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d servers, %d tests, %d measurement VMs\n",
		len(res.Selected), res.Report.Tests, res.Report.VMs)

	// Detect diurnal congestion with the paper's V > 0.5 threshold.
	rep, err := p.CongestionReport(res)
	if err != nil {
		log.Fatal(err)
	}
	clasp.WriteReport(os.Stdout, rep)

	egress, storage, compute := p.Costs()
	fmt.Printf("\nsimulated bill: egress $%.2f, storage $%.2f, compute $%.2f\n",
		egress, storage, compute)
}
