// Localspeedtest exercises the real wire protocols end-to-end on loopback:
// it starts an Ookla-protocol TCP server, an ndt7 WebSocket server and an
// Xfinity-style HTTP server in-process, then runs each client against them
// — once unshaped and once through the token-bucket shaper standing in for
// the paper's tc setup (1000/100 Mbps), showing the caps take effect.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/clasp-measurement/clasp/internal/shaper"
	"github.com/clasp-measurement/clasp/internal/speedtest"
	"github.com/clasp-measurement/clasp/internal/speedtest/ndt7"
	"github.com/clasp-measurement/clasp/internal/speedtest/ookla"
	"github.com/clasp-measurement/clasp/internal/speedtest/xfinity"
)

func main() {
	// --- servers -----------------------------------------------------------
	ooklaSrv, err := ookla.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ooklaSrv.Close()

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	ndtHandler := &ndt7.Handler{Duration: 2 * time.Second}
	mux.Handle(ndt7.DownloadPath, ndtHandler)
	mux.Handle(ndt7.UploadPath, ndtHandler)
	xfHandler := &xfinity.Handler{}
	mux.Handle(xfinity.LatencyPath, xfHandler)
	mux.Handle(xfinity.DownloadPath, xfHandler)
	mux.Handle(xfinity.UploadPath, xfHandler)
	go http.Serve(httpLn, mux)

	httpAddr := httpLn.Addr().String()
	fmt.Printf("ookla server on %s, http (ndt7+xfinity) on %s\n\n", ooklaSrv.Addr(), httpAddr)

	// shapedDial caps the connection like the paper's tc configuration
	// (here 200/50 Mbps so the cap is visible on loopback).
	shapedDial := func(ctx context.Context, addr string) (net.Conn, error) {
		conn, err := (&net.Dialer{Timeout: 5 * time.Second}).DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return shaper.NewConn(conn, shaper.Options{ReadMbps: 200, WriteMbps: 50}), nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	show := func(name string, res speedtest.Result, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s latency %6.2f ms   down %8.1f Mbps   up %8.1f Mbps\n",
			name, res.LatencyMs, res.DownloadMbps, res.UploadMbps)
	}

	// --- unshaped ------------------------------------------------------------
	oc := ookla.NewClient(ookla.Config{DownloadDuration: 2 * time.Second, UploadDuration: 2 * time.Second})
	res, err := oc.Run(ctx, ooklaSrv.Addr().String())
	show("ookla (unshaped)", res, err)

	nc := ndt7.NewClient(ndt7.Config{Duration: 2 * time.Second})
	res, err = nc.Run(ctx, httpAddr)
	show("ndt7 (unshaped)", res, err)

	xc := xfinity.NewClient(xfinity.Config{Duration: 2 * time.Second, Connections: 4, ObjectBytes: 4 << 20})
	res, err = xc.Run(ctx, httpAddr)
	show("xfinity (unshaped)", res, err)

	// --- shaped at 200/50 Mbps ----------------------------------------------
	fmt.Println()
	ocs := ookla.NewClient(ookla.Config{DownloadDuration: 2 * time.Second, UploadDuration: 2 * time.Second})
	ocs.Dial = shapedDial
	res, err = ocs.Run(ctx, ooklaSrv.Addr().String())
	show("ookla (200/50 shaped)", res, err)

	ncs := ndt7.NewClient(ndt7.Config{Duration: 2 * time.Second, Dial: shapedDial})
	res, err = ncs.Run(ctx, httpAddr)
	show("ndt7 (200/50 shaped)", res, err)

	fmt.Println("\nshaped runs must report ~200 Mbps down / ~50 Mbps up at most")
}
