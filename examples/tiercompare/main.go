// Tiercompare reproduces the paper's §4.1 premium-vs-standard experiment:
// a differential-based server selection for europe-west1, a two-tier
// campaign with paired same-hour tests, and the relative-difference
// analysis behind Fig. 5 — including identification of the lossy
// premium-tier targets.
package main

import (
	"fmt"
	"log"
	"os"

	clasp "github.com/clasp-measurement/clasp"
	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/core"
)

func main() {
	p, err := clasp.New(clasp.Options{Seed: 7, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	eng := p.Engine()

	// The preliminary Speedchecker-style scan and the differential
	// selection. The tuple-sample threshold scales with the platform
	// (the paper's >=100 rule assumes the full VP population).
	const minSamples = 25
	region := "europe-west1"
	res, selected, err := eng.RunDifferentialCampaign(region, 21, minSamples)
	if err != nil {
		log.Fatal(err)
	}
	core.WriteDifferentialSelection(os.Stdout, region, selected)

	// Fig. 5: CDFs of relative difference per metric and latency class.
	fig5, err := core.Fig5(res, selected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	core.WriteFig5(os.Stdout, fig5)

	// The paper's headline: the standard tier is generally faster but
	// noisier, traced to loss on premium egress interconnects.
	cmp, err := p.CompareTiers(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstandard tier faster: %.0f%% of download pairs, %.0f%% of upload pairs\n",
		cmp.StdFasterDownload*100, cmp.StdFasterUpload*100)
	fmt.Printf("median download delta (prem-std)/std: %+.2f; |delta|<0.5 in %.0f%%\n",
		cmp.MedianDownloadDelta, cmp.Within50*100)

	lossy := analysis.PremiumLossTargetsCursor(res.Cursor(), region, 0.02)
	fmt.Printf("\npremium-tier targets with persistent loss (> 2%% mean):\n")
	for _, l := range lossy {
		srv := eng.Topo.Server(l.ServerID)
		fmt.Printf("  %-38s mean loss %.1f%% over %d tests\n", srv.Host, l.MeanLoss*100, l.N)
	}
	if len(lossy) == 0 {
		fmt.Println("  (none at this scale/seed)")
	}
}
