// Congestion walks through the §3.3 detection pipeline on a single ISP:
// the Cox (Las Vegas) server the paper highlights in Fig. 3. It measures
// the pair hourly for two weeks, sweeps the variability threshold H
// (Fig. 2), locates the elbow, and prints the annotated two-day series
// with congested hours highlighted.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/core"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/topology"

	clasp "github.com/clasp-measurement/clasp"
)

func main() {
	p, err := clasp.New(clasp.Options{Seed: 11, Scale: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	eng := p.Engine()

	// Find the paper's example pair: Cox in Las Vegas, measured from
	// us-west1.
	var cox *topology.Server
	for _, s := range eng.Topo.Servers() {
		if s.ASN == 22773 && s.City == "Las Vegas" {
			cox = s
			break
		}
	}
	if cox == nil {
		log.Fatal("no Cox Las Vegas server in this topology")
	}
	fmt.Printf("measuring %s (AS%d, %s) from us-west1, hourly for 30 days\n\n",
		cox.Host, cox.ASN, cox.City)

	// Measure directly through the simulator (the orchestrator wraps
	// this; here we drive the pair by hand to show the lower-level API).
	series := congestion.Series{PairID: "us-west1/" + cox.Host}
	start := core.CampaignStart
	for h := 0; h < 30*24; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		res, err := eng.Sim.Measure(netsim.TestSpec{
			Region: "us-west1", Server: cox, Tier: bgp.Premium,
			Dir: netsim.Download, Time: at,
		})
		if err != nil {
			log.Fatal(err)
		}
		series.Samples = append(series.Samples, congestion.Sample{Time: at, Mbps: res.ThroughputMbps})
	}

	// Fig. 2-style sweep over this single pair.
	hs := core.DefaultThresholdGrid()
	daySweep := congestion.SweepDays([]congestion.Series{series}, hs, 0)
	fmt.Println("threshold sweep (fraction of congested days):")
	for _, pt := range daySweep {
		bar := ""
		for i := 0; i < int(pt.Fraction*40); i++ {
			bar += "#"
		}
		fmt.Printf("  H=%.2f %6.1f%% %s\n", pt.H, pt.Fraction*100, bar)
	}
	if elbow, err := congestion.ElbowThreshold(daySweep); err == nil {
		fmt.Printf("elbow of the curve: H = %.2f (the paper chose 0.5)\n\n", elbow)
	}

	// Label events at H = 0.5 and show the first congested two-day window
	// (the Fig. 3 view).
	det := congestion.NewDetector()
	events := det.Events(series)
	fmt.Printf("events at H=0.5: %d congested hours over %d days\n", len(events), 30)
	if len(events) == 0 {
		fmt.Println("no events — try another seed")
		return
	}
	firstDay := events[0].Time.Truncate(24 * time.Hour)
	window := congestion.Series{PairID: series.PairID}
	var vh []float64
	dayMax := map[int64]float64{}
	for _, s := range series.Samples {
		if s.Time.Before(firstDay) || !s.Time.Before(firstDay.Add(48*time.Hour)) {
			continue
		}
		window.Samples = append(window.Samples, s)
	}
	for _, s := range window.Samples {
		d := s.Time.Unix() / 86400
		if s.Mbps > dayMax[d] {
			dayMax[d] = s.Mbps
		}
	}
	for _, s := range window.Samples {
		vh = append(vh, (dayMax[s.Time.Unix()/86400]-s.Mbps)/dayMax[s.Time.Unix()/86400])
	}
	core.WriteFig3(os.Stdout, &core.Fig3Data{
		PairID:  window.PairID,
		Samples: window.Samples,
		VH:      vh,
		Events:  det.Events(window),
	})
}
