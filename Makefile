GO ?= go

.PHONY: build test race vet bench bench-all bench-smoke obs-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the hot-path benchmarks (steady-state Measure, cold Measure,
# sharded TSDB ingest) and records ns/op and allocs/op — joined with the
# pre-overhaul baselines from BENCH_baseline.txt — in BENCH_hotpath.json.
# A second pass records the observability numbers in BENCH_obs.json:
# MeasureWarm vs MeasureWarmObs is the metrics-enabled overhead (budget 5%),
# and the BenchmarkObs* entries pin the disabled paths at 0 allocs/op.
bench:
	$(GO) test -run=^$$ -bench='BenchmarkMeasure|BenchmarkInsert' -benchmem \
		./internal/netsim/ ./internal/tsdb/ | tee /dev/stderr | \
		$(GO) run ./internal/tools/benchjson -baseline BENCH_baseline.txt -out BENCH_hotpath.json
	$(GO) test -run=^$$ -bench='BenchmarkObs|BenchmarkMeasureWarm' -benchmem \
		./internal/obs/ ./internal/netsim/ | tee /dev/stderr | \
		$(GO) run ./internal/tools/benchjson \
		-note "observability: MeasureWarm vs MeasureWarmObs is the metrics-enabled overhead on the steady-state campaign path (budget 5%); ObsDisabled* pin the disabled paths at 0 allocs/op" \
		-out BENCH_obs.json

# bench-all runs every benchmark in the repo.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke executes the hot-path benchmarks a fixed small number of
# iterations — a CI check that they still compile and run, not a timing.
bench-smoke:
	$(GO) test -run=^$$ -bench='BenchmarkMeasure|BenchmarkInsert' -benchtime=100x \
		./internal/netsim/ ./internal/tsdb/

# obs-smoke runs a tiny metrics-enabled campaign and asserts the Prometheus
# dump parses, contains the core series (cache hit/miss, measure latency,
# shard inserts, campaign progress), has no duplicate or unregistered
# series, and agrees with the JSON snapshot.
obs-smoke:
	$(GO) run ./internal/tools/obssmoke

# ci is the gate for every change: tier-1 build + tests, static checks,
# the full suite under the race detector, a benchmark smoke run, and the
# observability smoke gate.
ci: build test vet race bench-smoke obs-smoke
