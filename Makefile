GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# ci is the gate for every change: tier-1 build + tests, static checks,
# and the full suite under the race detector.
ci: build test vet race
