GO ?= go

.PHONY: build test race vet fmt-check cover-check bench bench-all bench-smoke obs-smoke fault-smoke analysis-smoke scenario-smoke block-smoke loadgen-smoke resume-smoke bench-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails the build when any file is not gofmt-clean, listing the
# offenders. CI runs it so formatting never drifts into review.
fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "fmt-check: these files need gofmt:"; echo "$$files"; exit 1; \
	fi; \
	echo "fmt-check: OK"

# The explicit timeout gives the orchestrator suite headroom under the
# race detector on small CI machines (the default is 10m per package).
race:
	$(GO) test -race -timeout 20m ./...

# cover-check enforces the statement-coverage floor on the checkpoint
# package — the code whose whole job is surviving kills, where an
# untested branch is a lost campaign. The floor is a checked-in constant:
# raising coverage ratchets it, lowering it is a reviewed decision.
CHECKPOINT_COVER_MIN = 80.0

cover-check:
	@profile=$$(mktemp); \
	$(GO) test -count=1 -coverprofile=$$profile ./internal/checkpoint/ >/dev/null || { rm -f $$profile; exit 1; }; \
	total=$$($(GO) tool cover -func=$$profile | awk '/^total:/ { gsub("%","",$$3); print $$3 }'); \
	rm -f $$profile; \
	awk -v got="$$total" -v min="$(CHECKPOINT_COVER_MIN)" 'BEGIN { \
		if (got+0 < min+0) { printf "cover-check: internal/checkpoint coverage %.1f%% is below the %.1f%% floor\n", got, min; exit 1 } \
		printf "cover-check: OK: internal/checkpoint coverage %.1f%% (floor %.1f%%)\n", got, min }'

# bench runs the hot-path benchmarks (steady-state Measure, cold Measure,
# sharded TSDB ingest) and records ns/op and allocs/op — joined with the
# pre-overhaul baselines from BENCH_baseline.txt — in BENCH_hotpath.json.
# A second pass records the observability numbers in BENCH_obs.json:
# MeasureWarm vs MeasureWarmObs is the metrics-enabled overhead (budget 5%),
# and the BenchmarkObs* entries pin the disabled paths at 0 allocs/op.
# The fourth pass records the analysis-engine numbers in BENCH_analysis.json,
# joined with the pre-engine baselines from BENCH_analysis_baseline.txt; it
# runs -count=3 (benchjson keeps the min) because the ms-scale analysis
# kernels see far fewer iterations per run than the ns-scale hot-path ones.
# The sixth pass records the pipelined report-all numbers in
# BENCH_reportall.json: end-to-end wall-clock and peak RSS for the full
# 13-artifact render, sequential vs scheduled.
# The fifth pass records the columnar-block numbers in BENCH_tsdb.json:
# block encode/decode ns/op with the compressed bytes/sample, record-log
# append with bytes/record (the ≥4x win over the 88-byte struct), and the
# streaming cursor kernels beside their in-memory counterparts in
# BENCH_analysis.json.
bench:
	$(GO) test -run=^$$ -bench='BenchmarkMeasure|BenchmarkInsert' -benchmem \
		./internal/netsim/ ./internal/tsdb/ | tee -a /dev/stderr | \
		$(GO) run ./internal/tools/benchjson -baseline BENCH_baseline.txt -out BENCH_hotpath.json
	$(GO) test -run=^$$ -bench='BenchmarkObs|BenchmarkMeasureWarm' -benchmem \
		./internal/obs/ ./internal/netsim/ | tee -a /dev/stderr | \
		$(GO) run ./internal/tools/benchjson \
		-note "observability: MeasureWarm vs MeasureWarmObs is the metrics-enabled overhead on the steady-state campaign path (budget 5%); ObsDisabled* pin the disabled paths at 0 allocs/op" \
		-out BENCH_obs.json
	$(GO) test -run=^$$ -bench='BenchmarkFaults' -benchmem \
		./internal/netsim/ ./internal/faults/ | tee -a /dev/stderr | \
		$(GO) run ./internal/tools/benchjson \
		-note "fault injection: FaultsDisabledMeasureCtx vs MeasureWarm (BENCH_obs.json) is the nil-injector overhead on the fault-free campaign path, budget 0 allocs/op (pinned by TestMeasureCtxDisabledPathZeroAlloc); FaultsBeforeMeasureMiss is the per-test decision cost under an active profile; FaultsBackoff is the per-retry schedule computation" \
		-out BENCH_faults.json
	$(GO) test -run=^$$ -bench='BenchmarkAnalysis' -benchmem -count=3 \
		./internal/analysis/ ./internal/congestion/ ./internal/tsdb/ . | tee -a /dev/stderr | \
		$(GO) run ./internal/tools/benchjson -baseline BENCH_analysis_baseline.txt \
		-note "analysis engine: grouping and sweep kernels, percentile rollup, and the end-to-end CongestionReport; Speedup joins the pre-engine numbers in BENCH_analysis_baseline.txt (map-of-slices grouping, per-threshold re-splits, serial report)" \
		-out BENCH_analysis.json
	$(GO) test -run=^$$ -bench='BenchmarkBlock' -benchmem -count=3 \
		./internal/tsdb/ ./internal/analysis/ | tee -a /dev/stderr | \
		$(GO) run ./internal/tools/benchjson \
		-note "columnar blocks: BlockEncode/BlockDecode seal and reopen one 512-point tsdb block (extra bytes/sample is the compressed footprint; a raw ts+3-field sample is 32 B, a live Point ~200 B); BlockRecordLogAppend is streaming campaign ingest (extra bytes/record vs the 88 B in-memory Measurement — the >=4x compression gate); BlockStream* are the cursor kernels over a compressed log, comparable to their in-memory twins in BENCH_analysis.json" \
		-out BENCH_tsdb.json
	$(GO) test -run=^$$ -bench='BenchmarkReportAll' -benchmem \
		./internal/scenario/ | tee -a /dev/stderr | \
		$(GO) run ./internal/tools/benchjson \
		-note "pipelined report all: one full 13-artifact render at seed 3, scale 0.1, 2 days, parallelism 4; Sequential renders one artifact at a time (campaigns on demand), Pipelined runs the command scheduler (campaigns concurrent, artifacts render as inputs complete) — both share campaign results and memoized selections; peak-RSS-MB is the process high-water mark (VmHWM); the against-main wall-clock comparison is in EXPERIMENTS.md" \
		-out BENCH_reportall.json

# bench-all runs every benchmark in the repo.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke executes the hot-path benchmarks a fixed small number of
# iterations — a CI check that they still compile and run, not a timing.
bench-smoke:
	$(GO) test -run=^$$ -bench='BenchmarkMeasure|BenchmarkInsert' -benchtime=100x \
		./internal/netsim/ ./internal/tsdb/

# obs-smoke runs a tiny metrics-enabled campaign and asserts the Prometheus
# dump parses, contains the core series (cache hit/miss, measure latency,
# shard inserts, campaign progress), has no duplicate or unregistered
# series, and agrees with the JSON snapshot.
obs-smoke:
	$(GO) run ./internal/tools/obssmoke

# analysis-smoke runs the same campaign and congestion report at
# parallelism 1 and 4 and fails unless the rendered reports are
# byte-identical — the analysis engine's deterministic-merge gate.
analysis-smoke:
	$(GO) run ./internal/tools/analysissmoke

# fault-smoke runs a small end-to-end campaign under the flaky-vm fault
# profile through the public clasp API and asserts the platform degrades
# gracefully: faults fire, the campaign completes, and the partial-round
# accounting balances (completed + dropped = scheduled).
fault-smoke:
	$(GO) run ./internal/tools/faultsmoke

# scenario-smoke runs the catalog's small-smoke scenario solo and inside a
# two-scenario fleet and fails unless both outputs are byte-identical to
# the committed golden under examples/scenarios/ — the declarative-layer
# regression gate.
scenario-smoke:
	$(GO) run ./internal/tools/scenariosmoke

# block-smoke is the storage-determinism gate: it runs the small-smoke
# scenario with the record-memory budget and spill enabled and diffs the
# report against the committed golden, then forces the streaming path on a
# longer variant (budgeted vs unbounded must be byte-identical) and asserts
# a budgeted campaign really does compress and spill its records.
block-smoke:
	$(GO) run ./internal/tools/blocksmoke

# loadgen-smoke is the serving-path telemetry gate: it boots the full
# speedtestd daemon in-process on ephemeral ports, fires a concurrent burst
# of real-protocol clients (ookla TCP, ndt7 WebSocket, xfinity HTTP) at it,
# and asserts the per-route latency histograms moved, /debug/obs/history
# serves well-formed windowed JSON over the scraped self-store, and the
# percentiles loadgen reconstructs from that history are sane.
loadgen-smoke:
	$(GO) run ./internal/tools/loadgensmoke

# resume-smoke is the kill-matrix checkpoint/resume gate: it builds the
# real clasp binary, SIGKILLs a checkpointing campaign at each of three
# deterministic points (mid-round, block-flush, round-boundary — armed
# via CLASP_KILL_POINT, see internal/killpoint), resumes each through
# `clasp resume`, and fails unless every resumed run's stdout is
# byte-identical to a never-killed run — at parallelism 1 and 4. A fourth
# cell kills a multi-campaign `report all` as its second campaign
# completes and requires the command resume to skip the finished
# campaigns and still reproduce the full report byte-for-byte.
resume-smoke:
	$(GO) run ./internal/tools/resumesmoke

# bench-check re-runs the recorded benchmarks and compares them against
# the committed BENCH_*.json records: more than +25% ns/op or more than
# +0.2% allocs/op fails the build (timings get machine-noise slack;
# allocation slack rounds to zero for the deterministic micro-benchmarks
# and only absorbs scheduling jitter in the concurrent report-all
# macro-benchmark). -count=3 runs each benchmark
# three times and benchdiff keeps the per-benchmark minimum, so a noisy
# scheduler can't produce a false regression.
bench-check:
	$(GO) test -run=^$$ -count=3 -benchtime=0.5s \
		-bench='BenchmarkMeasure|BenchmarkInsert|BenchmarkObs|BenchmarkFaults|BenchmarkAnalysis|BenchmarkBlock|BenchmarkReportAll' -benchmem \
		./internal/netsim/ ./internal/tsdb/ ./internal/obs/ ./internal/faults/ \
		./internal/analysis/ ./internal/congestion/ ./internal/scenario/ . | tee -a /dev/stderr | \
		$(GO) run ./internal/tools/benchdiff \
		-against BENCH_hotpath.json -against BENCH_obs.json -against BENCH_faults.json \
		-against BENCH_analysis.json -against BENCH_tsdb.json -against BENCH_reportall.json

# ci is the gate for every change: formatting, tier-1 build + tests,
# static checks, the checkpoint coverage floor, the full suite under the
# race detector, a benchmark smoke run, the observability,
# fault-injection, analysis-determinism, scenario-golden,
# storage-determinism, serving-path-telemetry and kill-matrix
# checkpoint/resume smoke gates, and the benchmark regression check
# against the committed BENCH_*.json records. It is the local superset of
# the CI workflow's parallel jobs (.github/workflows/ci.yml).
ci: fmt-check build test vet cover-check race bench-smoke obs-smoke fault-smoke analysis-smoke scenario-smoke block-smoke loadgen-smoke resume-smoke bench-check
