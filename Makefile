GO ?= go

.PHONY: build test race vet bench bench-all bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the hot-path benchmarks (steady-state Measure, cold Measure,
# sharded TSDB ingest) and records ns/op and allocs/op — joined with the
# pre-overhaul baselines from BENCH_baseline.txt — in BENCH_hotpath.json.
bench:
	$(GO) test -run=^$$ -bench='BenchmarkMeasure|BenchmarkInsert' -benchmem \
		./internal/netsim/ ./internal/tsdb/ | tee /dev/stderr | \
		$(GO) run ./internal/tools/benchjson -baseline BENCH_baseline.txt -out BENCH_hotpath.json

# bench-all runs every benchmark in the repo.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke executes the hot-path benchmarks a fixed small number of
# iterations — a CI check that they still compile and run, not a timing.
bench-smoke:
	$(GO) test -run=^$$ -bench='BenchmarkMeasure|BenchmarkInsert' -benchtime=100x \
		./internal/netsim/ ./internal/tsdb/

# ci is the gate for every change: tier-1 build + tests, static checks,
# the full suite under the race detector, and a benchmark smoke run.
ci: build test vet race bench-smoke
