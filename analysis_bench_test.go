package clasp

// End-to-end analysis benchmarks: campaign records -> CongestionReport.
// They use a dedicated small fixture (one region, 14 days) instead of the
// six-campaign fixture in bench_test.go so `make bench`'s analysis pipeline
// and `make bench-check` stay fast.

import (
	"bytes"
	"sync"
	"testing"
)

type analysisFix struct {
	p1, p4 *Platform // same seed/scale, differing Parallelism
	res    *CampaignResult
}

var (
	anOnce sync.Once
	anFix  *analysisFix
	anErr  error
)

func analysisFixture(b *testing.B) *analysisFix {
	b.Helper()
	anOnce.Do(func() {
		p1, err := New(Options{Seed: 1, Scale: 0.12, Parallelism: 1})
		if err != nil {
			anErr = err
			return
		}
		p4, err := New(Options{Seed: 1, Scale: 0.12, Parallelism: 4})
		if err != nil {
			anErr = err
			return
		}
		res, err := p1.RunTopologyCampaign("us-west1", 14)
		if err != nil {
			anErr = err
			return
		}
		anFix = &analysisFix{p1: p1, p4: p4, res: res}
	})
	if anErr != nil {
		b.Fatal(anErr)
	}
	return anFix
}

func benchCongestionReport(b *testing.B, pick func(*analysisFix) *Platform) {
	f := analysisFixture(b)
	p := pick(f)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := p.CongestionReport(f.res)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			WriteReport(&buf, rep)
			b.ReportMetric(float64(len(rep.Pairs)), "pairs")
		}
	}
}

// BenchmarkAnalysisCongestionReport is the full post-campaign analysis
// (grouping, per-series detection, report assembly) on one worker.
func BenchmarkAnalysisCongestionReport(b *testing.B) {
	benchCongestionReport(b, func(f *analysisFix) *Platform { return f.p1 })
}

// BenchmarkAnalysisCongestionReportP4 is the same computation with the
// platform's Parallelism option at 4. Output is bit-identical (pinned by
// TestCongestionReportGolden); on a multi-core host only the wall clock
// moves.
func BenchmarkAnalysisCongestionReportP4(b *testing.B) {
	benchCongestionReport(b, func(f *analysisFix) *Platform { return f.p4 })
}
