// Package clasp is the public API of CLASP, the CLoud-based Applications
// Speed Platform from "Measuring the network performance of Google Cloud
// Platform" (Mok et al., ACM IMC 2021).
//
// CLASP measures the network performance between cloud regions and the
// wider Internet by orchestrating measurement VMs that run speed tests
// against widely deployed test servers (Ookla, M-Lab ndt7, Comcast
// Xfinity-style). It selects representative servers with two methods — a
// topology-based method built on bdrmap border inference, and a
// differential method built on premium/standard tier latency deltas — runs
// longitudinal hourly campaigns, and detects diurnal congestion from
// throughput variability.
//
// This implementation is offline-complete: every substrate the paper used
// (the Internet's AS topology, BGP tier routing, GCP's control plane,
// Speedchecker, tcpdump, bdrmap, InfluxDB, ...) is implemented in this
// module, and the speed test client/server protocols run over real TCP
// sockets. See DESIGN.md for the substitution map and EXPERIMENTS.md for
// paper-vs-measured results.
//
// Quickstart:
//
//	p, err := clasp.New(clasp.Options{Seed: 1, Scale: 0.1})
//	if err != nil { ... }
//	res, err := p.RunTopologyCampaign("us-west1", 30)
//	rep, err := p.CongestionReport(res)
package clasp

import (
	"fmt"
	"io"
	"time"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/core"
	"github.com/clasp-measurement/clasp/internal/hmm"
	"github.com/clasp-measurement/clasp/internal/inband"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/obs"
)

// Options configures a Platform.
type Options struct {
	// Seed drives all topology generation and simulation randomness;
	// equal seeds give bit-identical campaigns. Defaults to 1.
	Seed int64
	// Scale sizes the synthetic Internet relative to the paper's
	// measurement scale (1.0 ~ 6k interdomain links per region and ~1.3k
	// US test servers). Defaults to 0.25; use PaperScale for 1.0.
	Scale float64
	// PaperScale overrides Scale with the full paper-scale topology.
	PaperScale bool
	// Parallelism bounds the concurrent VM workers per campaign round.
	// 0 or 1 runs sequentially; any value yields identical results for
	// the same seed (the engine's determinism guarantee).
	Parallelism int
	// FaultProfile names a canned fault-injection profile ("none",
	// "flaky-vm", "congested-server", "outage") that every campaign runs
	// under. Empty or "none" disables injection — results stay
	// bit-identical to a fault-free platform. Active profiles inject
	// deterministic VM and measurement failures; the orchestrator retries,
	// degrades and accounts for them (see the Report's resilience
	// counters), and two runs with the same Seed fail in exactly the same
	// places.
	FaultProfile string
	// CaptureEvery uploads a packet capture plus SoMeta metadata for every
	// Nth download test (0 disables). TracerouteEvery runs follow-up
	// traceroutes per server every N campaign days (0 disables). Neither
	// feeds back into measurements, so results are bit-identical at any
	// setting.
	CaptureEvery    int
	TracerouteEvery int
	// MaxMemoryMB budgets the resident footprint of campaign records
	// (0 = unbounded). Campaigns whose raw record slice would exceed half
	// the budget stream their records through a compressed, disk-spilled
	// columnar log instead; analyses read it back block-at-a-time, and
	// every report stays byte-identical to the in-memory path.
	MaxMemoryMB int
	// SpillDir is where streaming campaigns place their spilled record
	// logs ("" = the system temp dir). Spill files are unlinked at
	// creation, so they vanish with the process.
	SpillDir string
	// CheckpointDir enables campaign checkpoint/resume: each campaign
	// periodically commits its progress and record stream into an
	// atomically renamed checkpoint under this directory, and a killed
	// process can be continued with `clasp resume` — producing output
	// byte-identical to a never-killed run. "" disables checkpointing.
	CheckpointDir string
	// CheckpointEvery commits a checkpoint every N completed campaign
	// rounds (hours); CheckpointVMHours instead commits once N VM-hours
	// accrue since the last checkpoint. With CheckpointDir set and both
	// zero, the campaign checkpoints every round.
	CheckpointEvery   int
	CheckpointVMHours int
}

// Platform is a fully wired CLASP instance over the simulated Internet and
// cloud substrate.
type Platform struct {
	engine *core.CLASP
}

// New creates a platform.
func New(opts Options) (*Platform, error) {
	scale := opts.Scale
	if opts.PaperScale {
		scale = 1.0
	}
	if scale == 0 {
		scale = 0.25
	}
	eng, err := core.New(core.Options{
		Seed:              opts.Seed,
		Scale:             scale,
		Parallelism:       opts.Parallelism,
		FaultProfile:      opts.FaultProfile,
		CaptureEvery:      opts.CaptureEvery,
		TracerouteEvery:   opts.TracerouteEvery,
		MaxMemoryMB:       opts.MaxMemoryMB,
		SpillDir:          opts.SpillDir,
		CheckpointDir:     opts.CheckpointDir,
		CheckpointEvery:   opts.CheckpointEvery,
		CheckpointVMHours: opts.CheckpointVMHours,
	})
	if err != nil {
		return nil, fmt.Errorf("clasp: %w", err)
	}
	return &Platform{engine: eng}, nil
}

// NewFromCore wraps an already-built engine in a Platform. The scenario
// runner uses it to construct engines with a shared substrate (see
// core.Options.Substrate); the platform takes ownership of the engine.
func NewFromCore(eng *core.CLASP) *Platform { return &Platform{engine: eng} }

// Engine exposes the underlying engine for advanced use (experiment
// generators, raw topology access). The returned value is owned by the
// platform.
func (p *Platform) Engine() *core.CLASP { return p.engine }

// Regions returns the cloud regions available for campaigns.
func (p *Platform) Regions() []string {
	var out []string
	for _, r := range p.engine.Topo.Regions {
		out = append(out, r.Name)
	}
	return out
}

// CampaignResult is the outcome of one measurement campaign.
type CampaignResult = core.CampaignResult

// RunTopologyCampaign selects servers with the topology-based method
// (§3.1) and measures each hourly over the premium tier for `days` days of
// virtual time.
func (p *Platform) RunTopologyCampaign(region string, days int) (*CampaignResult, error) {
	res, _, err := p.engine.RunTopologyCampaign(region, days)
	return res, err
}

// RunTopologyCampaigns runs the topology-based campaign in several regions
// concurrently, one goroutine per region over the shared substrate — the
// paper's actual deployment shape. Per-region results are identical to
// running each campaign alone with the same seed.
func (p *Platform) RunTopologyCampaigns(regions []string, days int) (map[string]*CampaignResult, error) {
	res, _, err := p.engine.RunTopologyCampaigns(regions, days)
	return res, err
}

// RunDifferentialCampaign selects servers with the differential-based
// method and measures each hourly over both network tiers. minSamples is
// the preliminary-scan tuple threshold (the paper used 100; pass a smaller
// value for reduced-scale platforms).
func (p *Platform) RunDifferentialCampaign(region string, days, minSamples int) (*CampaignResult, error) {
	res, _, err := p.engine.RunDifferentialCampaign(region, days, minSamples)
	return res, err
}

// PairSummary describes one measured VM-server pair in a congestion report.
type PairSummary struct {
	PairID        string
	ServerID      int
	Days          int
	CongestedDays int
	Events        int
	// PeakHourLocal is the modal local hour of the pair's events (-1
	// when the pair saw none).
	PeakHourLocal int
}

// CongestionReport summarises congestion across a campaign at H = 0.5.
type CongestionReport struct {
	Region string
	// HourFraction is the fraction of pair-hours with VH > 0.5
	// (paper: 1.3-3 %).
	HourFraction float64
	// DayFraction is the fraction of pair-days with V > 0.5
	// (paper: 11-30 %).
	DayFraction float64
	// Pairs lists the per-pair summaries, most congested first.
	Pairs []PairSummary
}

// CongestionReport runs the §3.3 detector over a campaign's download
// measurements (premium tier). Per-series detection fans out across
// Options.Parallelism workers; each worker builds one memoized day
// partition per series, writes its tallies to its own index, and the
// merge reads them back in index order — so the report is bit-identical
// at any parallelism (pinned by TestCongestionReportGolden).
func (p *Platform) CongestionReport(res *CampaignResult) (*CongestionReport, error) {
	if res == nil || res.NumRecords() == 0 {
		return nil, fmt.Errorf("clasp: empty campaign result")
	}
	sp := obs.Trace("congestion_report").With("region", res.Region).WithInt("records", res.NumRecords())
	defer sp.End()
	det := congestion.NewDetector()
	withServer, parts := res.SeriesAndPartitions(netsim.Download, bgp.Premium)
	if len(withServer) == 0 {
		return nil, fmt.Errorf("clasp: no premium download series in result")
	}
	type pairTally struct {
		summary             PairSummary
		days, congestedDays int // qualifying days; V > H days
		hours, events       int // samples on qualifying days; VH > H
	}
	tallies := make([]pairTally, len(withServer))
	dsp := sp.Child("detect").WithInt("series", len(withServer)).WithInt("parallelism", p.engine.Opts.Parallelism)
	analysis.ParallelFor(p.engine.Opts.Parallelism, len(withServer), func(i int) {
		sw := withServer[i]
		part := parts[i]
		days := part.Days(det.MinSamples)
		events := det.EventsIn(part)
		congDays := make(map[int]bool)
		var hourCount [24]int
		srv := p.engine.Topo.Server(sw.ServerID) // read-only lookups, safe across workers
		for _, e := range events {
			congDays[int(e.Time.Unix()/86400)] = true
			if srv != nil {
				if city, ok := p.engine.Topo.CityOf(srv.City); ok {
					hourCount[city.LocalHour(e.Time.Hour())]++
				}
			}
		}
		peak := -1
		best := 0
		for h, n := range hourCount {
			if n > best {
				best, peak = n, h
			}
		}
		t := &tallies[i]
		t.summary = PairSummary{
			PairID:        sw.Series.PairID,
			ServerID:      sw.ServerID,
			Days:          len(days),
			CongestedDays: len(congDays),
			Events:        len(events),
			PeakHourLocal: peak,
		}
		t.congestedDays, t.days = part.DayTally(det.H, det.MinSamples)
		t.events, t.hours = part.HourTally(det.H, det.MinSamples)
	})
	dsp.End()
	rep := &CongestionReport{Region: res.Region, Pairs: make([]PairSummary, 0, len(tallies))}
	// Campaign-wide fractions fold the per-series integer tallies, in index
	// order, and divide once — order-independent, so identical to the
	// serial FractionCongested{Hours,Days} path.
	var dTot, dCong, hTot, hCong int
	for i := range tallies {
		t := &tallies[i]
		rep.Pairs = append(rep.Pairs, t.summary)
		dTot += t.days
		dCong += t.congestedDays
		hTot += t.hours
		hCong += t.events
	}
	if hTot > 0 {
		rep.HourFraction = float64(hCong) / float64(hTot)
	}
	if dTot > 0 {
		rep.DayFraction = float64(dCong) / float64(dTot)
	}
	sortPairs(rep.Pairs)
	return rep, nil
}

func sortPairs(pairs []PairSummary) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && (pairs[j].Events > pairs[j-1].Events ||
			(pairs[j].Events == pairs[j-1].Events && pairs[j].PairID < pairs[j-1].PairID)); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

// WriteReport renders a congestion report as text.
func WriteReport(w io.Writer, rep *CongestionReport) {
	fmt.Fprintf(w, "Congestion report for %s (H = %.1f)\n", rep.Region, congestion.DefaultThreshold)
	fmt.Fprintf(w, "  congested pair-hours: %.2f%%\n", rep.HourFraction*100)
	fmt.Fprintf(w, "  congested pair-days:  %.1f%%\n", rep.DayFraction*100)
	fmt.Fprintf(w, "  %-40s %6s %10s %8s %10s\n", "pair", "days", "cong.days", "events", "peak hour")
	for _, p := range rep.Pairs {
		if p.Events == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-40s %6d %10d %8d %10d\n", p.PairID, p.Days, p.CongestedDays, p.Events, p.PeakHourLocal)
	}
}

// TierComparison is the §4.1 premium-vs-standard summary of a differential
// campaign.
type TierComparison struct {
	Region string
	// StdFasterDownload / StdFasterUpload are the fractions of paired
	// tests where the standard tier's throughput was higher.
	StdFasterDownload float64
	StdFasterUpload   float64
	// Within50 is the fraction of download deltas with |Δ| < 0.5.
	Within50 float64
	// MedianDownloadDelta is the median (prem-std)/std download delta.
	MedianDownloadDelta float64
	// PairedTests is the number of same-hour tier pairs compared.
	PairedTests int
}

// CompareTiers computes the §4.1 comparison from a differential campaign.
func (p *Platform) CompareTiers(res *CampaignResult) (*TierComparison, error) {
	if res == nil {
		return nil, fmt.Errorf("clasp: nil campaign result")
	}
	down := analysis.TierDeltasCursor(res.Cursor(), res.Region, analysis.MetricDownload)
	if len(down) == 0 {
		return nil, fmt.Errorf("clasp: no paired tier measurements (run a differential campaign)")
	}
	up := analysis.TierDeltasCursor(res.Cursor(), res.Region, analysis.MetricUpload)
	cdf, err := analysis.DeltaCDF(down)
	if err != nil {
		return nil, err
	}
	median := 0.0
	for _, pt := range cdf {
		if pt.P >= 0.5 {
			median = pt.X
			break
		}
	}
	return &TierComparison{
		Region:              res.Region,
		StdFasterDownload:   analysis.FractionStandardHigher(down),
		StdFasterUpload:     analysis.FractionStandardHigher(up),
		Within50:            analysis.FractionWithin(down, 0.5),
		MedianDownloadDelta: median,
		PairedTests:         len(down),
	}, nil
}

// Costs reports the accrued simulated cloud bill (egress, storage,
// compute), the constraint that shaped the paper's deployment (§5: over
// USD 6k per month).
func (p *Platform) Costs() (egressUSD, storageUSD, computeUSD float64) {
	c := p.engine.Cloud.Costs()
	return c.EgressUSD, c.StorageUSD, c.ComputeUSD
}

// --- §5 extensions through the public API -------------------------------------

// HMMEvents runs the §5 hidden-Markov congestion detector over one pair's
// download series from a campaign and returns, per sample hour, whether the
// HMM labels it congested, alongside the detector threshold labels for
// comparison.
type HMMEvents struct {
	PairID string
	// Hours and the two labelings, index-aligned.
	Times     []time.Time
	HMM       []bool
	Threshold []bool
	// Agreement is the fraction of hours where the two detectors agree.
	Agreement float64
	// DiurnalACF24 is the lag-24h autocorrelation of the series.
	DiurnalACF24 float64
}

// DetectHMM applies the HMM detector to the most congested pair of a
// campaign (or the pair with the given server ID when serverID >= 0).
func (p *Platform) DetectHMM(res *CampaignResult, serverID int) (*HMMEvents, error) {
	if res == nil || res.NumRecords() == 0 {
		return nil, fmt.Errorf("clasp: empty campaign result")
	}
	det := congestion.NewDetector()
	series, _ := res.SeriesAndPartitions(netsim.Download, bgp.Premium)
	if len(series) == 0 {
		return nil, fmt.Errorf("clasp: no premium download series")
	}
	var target *congestion.Series
	if serverID >= 0 {
		for i := range series {
			if series[i].ServerID == serverID {
				target = &series[i].Series
				break
			}
		}
		if target == nil {
			return nil, fmt.Errorf("clasp: server %d not in campaign", serverID)
		}
	} else {
		bestEvents := -1
		for i := range series {
			if n := len(det.Events(series[i].Series)); n > bestEvents {
				bestEvents = n
				target = &series[i].Series
			}
		}
	}
	mbps := make([]float64, len(target.Samples))
	times := make([]time.Time, len(target.Samples))
	for i, s := range target.Samples {
		mbps[i] = s.Mbps
		times[i] = s.Time
	}
	labels, _, err := hmm.DetectCongestion(mbps)
	if err != nil {
		return nil, fmt.Errorf("clasp: %w", err)
	}
	thresholdAt := make(map[int64]bool)
	for _, e := range det.Events(*target) {
		thresholdAt[e.Time.Unix()] = true
	}
	out := &HMMEvents{PairID: target.PairID, Times: times, HMM: labels}
	agree := 0
	for i, at := range times {
		th := thresholdAt[at.Unix()]
		out.Threshold = append(out.Threshold, th)
		if th == labels[i] {
			agree++
		}
	}
	out.Agreement = float64(agree) / float64(len(times))
	if acf, err := hmm.DiurnalScore(mbps); err == nil {
		out.DiurnalACF24 = acf
	}
	return out, nil
}

// InbandEstimate runs the §5 in-band packet-train estimator against one
// server and compares it with a full speed test.
type InbandEstimate struct {
	ServerID       int
	AvailMbps      float64 // train estimate
	SpeedtestMbps  float64 // full test for comparison
	BottleneckName string  // segment the trains located
	ProbeCostRatio float64 // probe bytes / full-test bytes
}

// EstimateInband measures a server with packet trains instead of a
// throughput test.
func (p *Platform) EstimateInband(region string, serverID int) (*InbandEstimate, error) {
	srv := p.engine.Topo.Server(serverID)
	if srv == nil {
		return nil, fmt.Errorf("clasp: unknown server %d", serverID)
	}
	spec := netsim.TestSpec{
		Region: region, Server: srv, Tier: bgp.Premium,
		Dir: netsim.Download, Time: core.CampaignStart.Add(8 * time.Hour),
	}
	prober := inband.NewProber(p.engine.Sim, p.engine.Opts.Seed)
	res, err := prober.Estimate(spec, inband.Train{Packets: 128})
	if err != nil {
		return nil, fmt.Errorf("clasp: %w", err)
	}
	full, err := p.engine.Sim.Measure(spec)
	if err != nil {
		return nil, fmt.Errorf("clasp: %w", err)
	}
	return &InbandEstimate{
		ServerID:       serverID,
		AvailMbps:      res.AvailMbps,
		SpeedtestMbps:  full.ThroughputMbps,
		BottleneckName: res.Hops[res.Bottleneck].Name,
		ProbeCostRatio: res.CostRatio(15),
	}, nil
}
