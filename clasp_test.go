package clasp

import (
	"bytes"
	"strings"
	"testing"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(Options{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewDefaults(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine() == nil {
		t.Fatal("engine missing")
	}
	regions := p.Regions()
	if len(regions) != 7 {
		t.Errorf("regions = %v", regions)
	}
}

func TestTopologyCampaignAndCongestionReport(t *testing.T) {
	p := newPlatform(t)
	res, err := p.RunTopologyCampaign("us-west1", 20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.CongestionReport(res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Region != "us-west1" {
		t.Errorf("region = %q", rep.Region)
	}
	if rep.HourFraction < 0 || rep.HourFraction > 0.2 {
		t.Errorf("hour fraction = %v", rep.HourFraction)
	}
	if rep.DayFraction <= 0 || rep.DayFraction > 0.7 {
		t.Errorf("day fraction = %v", rep.DayFraction)
	}
	if len(rep.Pairs) == 0 {
		t.Fatal("no pairs in report")
	}
	// Sorted by events descending.
	for i := 1; i < len(rep.Pairs); i++ {
		if rep.Pairs[i].Events > rep.Pairs[i-1].Events {
			t.Error("pairs not sorted by events")
			break
		}
	}
	for _, pair := range rep.Pairs {
		if pair.CongestedDays > pair.Days {
			t.Errorf("pair %s: congested days exceed days", pair.PairID)
		}
		if pair.Events == 0 && pair.PeakHourLocal != -1 {
			t.Errorf("pair %s: peak hour without events", pair.PairID)
		}
	}
	var buf bytes.Buffer
	WriteReport(&buf, rep)
	if !strings.Contains(buf.String(), "Congestion report for us-west1") {
		t.Error("report rendering broken")
	}
}

func TestDifferentialCampaignAndTierComparison(t *testing.T) {
	p := newPlatform(t)
	res, err := p.RunDifferentialCampaign("europe-west1", 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := p.CompareTiers(res)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PairedTests == 0 {
		t.Fatal("no paired tests")
	}
	// §4.1: standard tier generally higher throughput.
	if cmp.StdFasterDownload < 0.5 {
		t.Errorf("standard faster in %.0f%% of downloads", cmp.StdFasterDownload*100)
	}
	if cmp.MedianDownloadDelta > 0 {
		t.Errorf("median delta %+.2f, want negative (standard higher)", cmp.MedianDownloadDelta)
	}
	if cmp.Within50 < 0.5 {
		t.Errorf("within-50%% fraction = %.2f", cmp.Within50)
	}
}

func TestCompareTiersErrors(t *testing.T) {
	p := newPlatform(t)
	if _, err := p.CompareTiers(nil); err == nil {
		t.Error("nil result accepted")
	}
	res, err := p.RunTopologyCampaign("us-east1", 1)
	if err != nil {
		t.Fatal(err)
	}
	// A topology campaign has no standard-tier measurements.
	if _, err := p.CompareTiers(res); err == nil {
		t.Error("single-tier campaign compared")
	}
}

func TestCongestionReportErrors(t *testing.T) {
	p := newPlatform(t)
	if _, err := p.CongestionReport(nil); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := p.CongestionReport(&CampaignResult{}); err == nil {
		t.Error("empty result accepted")
	}
}

func TestCostsAccrue(t *testing.T) {
	p := newPlatform(t)
	if _, err := p.RunTopologyCampaign("us-central1", 2); err != nil {
		t.Fatal(err)
	}
	egress, _, compute := p.Costs()
	if egress <= 0 || compute <= 0 {
		t.Errorf("costs = %v/%v", egress, compute)
	}
}

func TestDetectHMMAgainstThreshold(t *testing.T) {
	p := newPlatform(t)
	res, err := p.RunTopologyCampaign("us-east4", 30)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.DetectHMM(res, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Times) != len(ev.HMM) || len(ev.HMM) != len(ev.Threshold) {
		t.Fatal("label slices misaligned")
	}
	// The two detectors must broadly agree on the most congested pair.
	if ev.Agreement < 0.85 {
		t.Errorf("HMM/threshold agreement = %.2f", ev.Agreement)
	}
	if ev.PairID == "" {
		t.Error("pair ID missing")
	}
	// Specific-server variant and error paths.
	if _, err := p.DetectHMM(res, 1<<30); err == nil {
		t.Error("unknown server accepted")
	}
	if _, err := p.DetectHMM(nil, -1); err == nil {
		t.Error("nil result accepted")
	}
}

func TestEstimateInband(t *testing.T) {
	p := newPlatform(t)
	srv := p.Engine().Topo.Servers()[0]
	est, err := p.EstimateInband("us-east1", srv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if est.AvailMbps <= 0 || est.SpeedtestMbps <= 0 {
		t.Errorf("estimates: %+v", est)
	}
	// The train estimate should land near the full test.
	ratio := est.AvailMbps / est.SpeedtestMbps
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("inband/speedtest ratio = %.2f", ratio)
	}
	if est.ProbeCostRatio > 0.01 {
		t.Errorf("probe cost ratio = %.4f, want < 1%%", est.ProbeCostRatio)
	}
	if est.BottleneckName == "" {
		t.Error("bottleneck unnamed")
	}
	if _, err := p.EstimateInband("us-east1", 1<<30); err == nil {
		t.Error("unknown server accepted")
	}
}
