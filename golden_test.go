package clasp

// Golden test for the parallel analysis engine: CongestionReport and
// WriteReport must be bit-identical between the old serial algorithm
// (reimplemented below, verbatim from the pre-engine code) and the
// engine at parallelism 1, 4 and 16.

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/netsim"
)

// serialCongestionReport is the pre-engine implementation of
// Platform.CongestionReport: one goroutine, per-series re-splits, float
// fractions from the package-level helpers. The engine must reproduce it
// exactly.
func serialCongestionReport(p *Platform, res *CampaignResult) *CongestionReport {
	det := congestion.NewDetector()
	withServer := analysis.GroupSeriesWithServer(res.Records, netsim.Download, bgp.Premium)
	rep := &CongestionReport{Region: res.Region}
	var series []congestion.Series
	for _, sw := range withServer {
		series = append(series, sw.Series)
		days := congestion.SplitDays(sw.Series, 0)
		events := det.Events(sw.Series)
		congDays := make(map[int]bool)
		var hourCount [24]int
		for _, e := range events {
			congDays[int(e.Time.Unix()/86400)] = true
			srv := p.Engine().Topo.Server(sw.ServerID)
			if srv != nil {
				if city, ok := p.Engine().Topo.CityOf(srv.City); ok {
					hourCount[city.LocalHour(e.Time.Hour())]++
				}
			}
		}
		peak := -1
		best := 0
		for h, n := range hourCount {
			if n > best {
				best, peak = n, h
			}
		}
		rep.Pairs = append(rep.Pairs, PairSummary{
			PairID:        sw.Series.PairID,
			ServerID:      sw.ServerID,
			Days:          len(days),
			CongestedDays: len(congDays),
			Events:        len(events),
			PeakHourLocal: peak,
		})
	}
	rep.HourFraction = congestion.FractionCongestedHours(series, congestion.DefaultThreshold, 0)
	rep.DayFraction = congestion.FractionCongestedDays(series, congestion.DefaultThreshold, 0)
	sortPairs(rep.Pairs)
	return rep
}

func TestCongestionReportGolden(t *testing.T) {
	p, err := New(Options{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunTopologyCampaign("us-west1", 10)
	if err != nil {
		t.Fatal(err)
	}
	want := serialCongestionReport(p, res)
	var wantText bytes.Buffer
	WriteReport(&wantText, want)

	for _, par := range []int{1, 4, 16} {
		p.Engine().Opts.Parallelism = par
		got, err := p.CongestionReport(res)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		// Bit-identical structs: float fractions compared with ==, not a
		// tolerance — the engine's integer-tally merge must reproduce the
		// serial division exactly.
		if got.HourFraction != want.HourFraction || got.DayFraction != want.DayFraction {
			t.Errorf("parallelism %d: fractions (%v, %v) != serial (%v, %v)",
				par, got.HourFraction, got.DayFraction, want.HourFraction, want.DayFraction)
		}
		if !reflect.DeepEqual(got.Pairs, want.Pairs) {
			t.Errorf("parallelism %d: pair summaries diverged from serial reference", par)
		}
		var gotText bytes.Buffer
		WriteReport(&gotText, got)
		if !bytes.Equal(gotText.Bytes(), wantText.Bytes()) {
			t.Errorf("parallelism %d: rendered report differs from serial reference", par)
		}
	}
}
