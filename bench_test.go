package clasp

// The benchmark harness regenerates every table and figure of the paper's
// evaluation, prints the artifact once (the same rows/series the paper
// reports), and reports the headline numbers as benchmark metrics so runs
// can be compared:
//
//	go test -bench=. -benchmem
//
// Campaign fixtures are shared across benchmarks; the first benchmark that
// needs them pays the simulation cost once. The fixture scale and duration
// are reduced from the paper's 1.0-scale, 5-month campaign so a full bench
// sweep finishes in minutes; EXPERIMENTS.md records a paper-scale run.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/clasp-measurement/clasp/internal/alias"
	"github.com/clasp-measurement/clasp/internal/analysis"
	"github.com/clasp-measurement/clasp/internal/bdrmap"
	"github.com/clasp-measurement/clasp/internal/bgp"
	"github.com/clasp-measurement/clasp/internal/congestion"
	"github.com/clasp-measurement/clasp/internal/core"
	"github.com/clasp-measurement/clasp/internal/flowstats"
	"github.com/clasp-measurement/clasp/internal/hmm"
	"github.com/clasp-measurement/clasp/internal/inband"
	"github.com/clasp-measurement/clasp/internal/netsim"
	"github.com/clasp-measurement/clasp/internal/orchestrator"
	"github.com/clasp-measurement/clasp/internal/selection"
	"github.com/clasp-measurement/clasp/internal/stats"
	"github.com/clasp-measurement/clasp/internal/traceroute"
)

// benchScale and benchDays size the shared fixture.
const (
	benchScale = 0.2
	benchDays  = 30
	benchSeed  = 1
)

type fixture struct {
	platform *Platform
	eng      *core.CLASP
	topo     map[string]*core.CampaignResult // per-region topology campaigns
	topoSel  map[string]*selection.TopoResult
	diff     *core.CampaignResult // europe-west1 differential campaign
	diffSel  []selection.DiffSelected
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		p, err := New(Options{Seed: benchSeed, Scale: benchScale})
		if err != nil {
			fixErr = err
			return
		}
		f := &fixture{
			platform: p,
			eng:      p.Engine(),
			topo:     make(map[string]*core.CampaignResult),
			topoSel:  make(map[string]*selection.TopoResult),
		}
		for _, region := range core.TopologyRegions {
			res, sel, err := f.eng.RunTopologyCampaign(region, benchDays)
			if err != nil {
				fixErr = fmt.Errorf("fixture campaign %s: %w", region, err)
				return
			}
			f.topo[region] = res
			f.topoSel[region] = sel
		}
		res, sel, err := f.eng.RunDifferentialCampaign("europe-west1", benchDays, 12)
		if err != nil {
			fixErr = fmt.Errorf("fixture differential campaign: %w", err)
			return
		}
		f.diff = res
		f.diffSel = sel
		fix = f
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// printOnce writes the artifact on the first iteration only.
func printOnce(b *testing.B, i int, render func(io.Writer)) {
	if i == 0 && !testing.Short() {
		fmt.Fprintf(os.Stdout, "\n--- %s ---\n", b.Name())
		render(os.Stdout)
	}
}

// --- Table 1 -------------------------------------------------------------------

func BenchmarkTable1_TopologyCoverage(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := make([]core.Table1Row, 0, len(core.Table1Regions))
		for _, region := range core.Table1Regions {
			sel := f.topoSel[region]
			rows = append(rows, core.Table1Row{
				Region:      region,
				PilotLinks:  sel.PilotLinks.LinkCount(),
				ServerLinks: sel.ServerLinkCount,
				Measured:    len(sel.Selected),
				CoveragePct: sel.Coverage() * 100,
				SharedPct:   sel.SharedFraction * 100,
			})
		}
		printOnce(b, i, func(w io.Writer) { core.WriteTable1(w, rows) })
		if i == 0 {
			b.ReportMetric(rows[0].CoveragePct, "west1-coverage-%")
			b.ReportMetric(float64(rows[0].PilotLinks), "west1-pilot-links")
		}
	}
}

// --- Fig. 2 --------------------------------------------------------------------

func BenchmarkFig2a_CongestedDays(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := core.Fig2(f.topo, nil, 1)
		printOnce(b, i, func(w io.Writer) { core.WriteFig2(w, series) })
		if i == 0 {
			for _, s := range series {
				for _, p := range s.Days {
					if p.H == 0.5 && s.Region == "us-west1" {
						b.ReportMetric(p.Fraction*100, "west1-days@H=0.5-%")
					}
				}
			}
		}
	}
}

func BenchmarkFig2b_CongestedHours(b *testing.B) {
	f := getFixture(b)
	var all []congestion.Series
	for _, res := range f.topo {
		all = append(all, analysis.GroupSeries(res.Records, netsim.Download, bgp.Premium)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frac := congestion.FractionCongestedHours(all, congestion.DefaultThreshold, 0)
		if i == 0 {
			b.ReportMetric(frac*100, "hours@H=0.5-%")
			printOnce(b, i, func(w io.Writer) {
				fmt.Fprintf(w, "congested pair-hours at H=0.5: %.2f%% (paper: 1.3-3%%)\n", frac*100)
			})
		}
	}
}

// --- Fig. 3 --------------------------------------------------------------------

func BenchmarkFig3_TimeSeries(b *testing.B) {
	f := getFixture(b)
	res := f.topo["us-west1"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := f.eng.Fig3(res)
		if err != nil {
			b.Skipf("Cox pair not selected at this scale: %v", err)
		}
		printOnce(b, i, func(w io.Writer) { core.WriteFig3(w, d) })
		if i == 0 {
			b.ReportMetric(float64(len(d.Events)), "congested-hours")
		}
	}
}

// --- Fig. 4 --------------------------------------------------------------------

func BenchmarkFig4a_TopologyPerf(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var inBand, total int
		for _, region := range core.Table1Regions {
			d, err := core.Fig4(f.topo[region], bgp.Premium)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range d.Points {
				total++
				if p.P95Down >= 200 && p.P95Down <= 600 {
					inBand++
				}
			}
			if region == "us-west1" {
				printOnce(b, i, func(w io.Writer) { core.WriteFig4(w, d) })
			}
		}
		if i == 0 {
			b.ReportMetric(float64(inBand)/float64(total)*100, "p95-in-200-600-%")
		}
	}
}

func BenchmarkFig4bc_TierPerf(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prem, err := core.Fig4(f.diff, bgp.Premium)
		if err != nil {
			b.Fatal(err)
		}
		std, err := core.Fig4(f.diff, bgp.Standard)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func(w io.Writer) {
			core.WriteFig4(w, prem)
			core.WriteFig4(w, std)
		})
		if i == 0 {
			var pv, sv []float64
			for _, p := range prem.Points {
				pv = append(pv, p.P95Down)
			}
			for _, p := range std.Points {
				sv = append(sv, p.P95Down)
			}
			pm, _ := stats.Median(pv)
			sm, _ := stats.Median(sv)
			b.ReportMetric(pm, "premium-median-p95")
			b.ReportMetric(sm, "standard-median-p95")
		}
	}
}

// --- Fig. 5 --------------------------------------------------------------------

func BenchmarkFig5_TierDeltas(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.Fig5(f.diff, f.diffSel)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func(w io.Writer) { core.WriteFig5(w, s) })
		if i == 0 {
			b.ReportMetric(s.StdHigherDownload*100, "std-faster-%")
			b.ReportMetric(s.Within50*100, "within-50-%")
		}
	}
}

// --- Fig. 6 --------------------------------------------------------------------

func BenchmarkFig6ab_CongestionProb(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		east := f.eng.Fig6(f.topo["us-east1"], bgp.Premium, 10)
		west := f.eng.Fig6(f.topo["us-west1"], bgp.Premium, 10)
		printOnce(b, i, func(w io.Writer) {
			core.WriteFig6(w, "us-east1", east)
			core.WriteFig6(w, "us-west1", west)
		})
		if i == 0 {
			peak := 0.0
			for _, l := range west {
				for _, p := range l.Probs {
					if p > peak {
						peak = p
					}
				}
			}
			b.ReportMetric(peak, "west1-max-hourly-prob")
		}
	}
}

func BenchmarkFig6c_TierCongestion(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prem := f.eng.Fig6(f.diff, bgp.Premium, 6)
		std := f.eng.Fig6(f.diff, bgp.Standard, 6)
		printOnce(b, i, func(w io.Writer) {
			core.WriteFig6(w, "europe-west1 premium", prem)
			core.WriteFig6(w, "europe-west1 standard", std)
		})
		if i == 0 {
			b.ReportMetric(float64(len(prem)), "premium-congested-pairs")
			b.ReportMetric(float64(len(std)), "standard-congested-pairs")
		}
	}
}

// --- Fig. 7 --------------------------------------------------------------------

func BenchmarkFig7_ServerLocations(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := f.eng.Fig7("us-west1", f.topoSel["us-west1"], nil)
		pts = append(pts, f.eng.Fig7("europe-west1", nil, f.diffSel)...)
		printOnce(b, i, func(w io.Writer) { core.WriteFig7(w, pts) })
		if i == 0 {
			b.ReportMetric(float64(len(pts)), "markers")
		}
	}
}

// --- Fig. 8 --------------------------------------------------------------------

func BenchmarkFig8_BusinessTypes(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var congestedISP, totalISP float64
		for _, region := range core.Table1Regions {
			rows := f.eng.Fig8(f.topo[region], bgp.Premium)
			if region == "us-east1" {
				printOnce(b, i, func(w io.Writer) { core.WriteFig8(w, region, rows) })
			}
			for _, r := range rows {
				if r.Type.String() == "ISP" {
					congestedISP += float64(r.Congested)
					totalISP += float64(r.Total)
				}
			}
		}
		if i == 0 && totalISP > 0 {
			b.ReportMetric(congestedISP/totalISP*100, "ISP-congested-%")
		}
	}
}

// --- §3.3 elbow -----------------------------------------------------------------

func BenchmarkElbowMethod(b *testing.B) {
	f := getFixture(b)
	var all []congestion.Series
	for _, res := range f.topo {
		all = append(all, analysis.GroupSeries(res.Records, netsim.Download, bgp.Premium)...)
	}
	hs := core.DefaultThresholdGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep := congestion.SweepDays(all, hs, 0)
		h, err := congestion.ElbowThreshold(sweep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(h, "elbow-H")
		}
	}
}

// --- §4.1 premium loss ------------------------------------------------------------

func BenchmarkPremiumLossAnalysis(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lossy := analysis.PremiumLossTargets(f.diff.Records, "europe-west1", 0.01)
		// Validate one lossy target end-to-end through the packet-capture
		// pipeline: synthesise its flow, re-estimate the loss.
		if len(lossy) > 0 {
			var buf bytes.Buffer
			err := flowstats.Synthesize(&buf, flowstats.SynthConfig{
				Client:      f.eng.Sim.VMAddr("europe-west1", 0, 0),
				Server:      f.eng.Topo.Server(lossy[0].ServerID).IP,
				ClientPort:  40001,
				Start:       core.CampaignStart,
				RTTms:       60,
				Loss:        lossy[0].MeanLoss,
				RateMbps:    50,
				DurationSec: 3,
				Seed:        int64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			flows, err := flowstats.Analyze(&buf)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(lossy)), "lossy-targets")
				b.ReportMetric(flowstats.EstimateLoss(flows)*100, "pcap-estimated-loss-%")
				printOnce(b, i, func(w io.Writer) {
					for _, l := range lossy {
						fmt.Fprintf(w, "lossy premium target server %d: mean loss %.1f%% over %d tests\n",
							l.ServerID, l.MeanLoss*100, l.N)
					}
				})
			}
		} else if i == 0 {
			b.ReportMetric(0, "lossy-targets")
		}
	}
}

// --- Headlines --------------------------------------------------------------------

func BenchmarkHeadlines(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := f.eng.ComputeHeadlines(f.topo, f.diff)
		printOnce(b, i, func(w io.Writer) { core.WriteHeadlines(w, h) })
		if i == 0 {
			b.ReportMetric(h.CongestedHourFrac*100, "congested-hours-%")
			b.ReportMetric(h.CongestedISPFrac*100, "congested-ISPs-%")
			b.ReportMetric(h.P95DownIn200600*100, "p95-in-band-%")
			b.ReportMetric(h.StdTierHigherFrac*100, "std-faster-%")
		}
	}
}

// --- Ablations (DESIGN.md D1-D5) ---------------------------------------------------

// BenchmarkAblationParisVsClassic (D1): classic traceroute varies the flow
// identifier per probe, so repeated traces to the same destination can
// oscillate across ECMP'd intra-domain paths; paris keeps the flow fixed
// and the path stable. Stability is what lets bdrmap and the selection
// pipeline attribute a server to one consistent border crossing.
func BenchmarkAblationParisVsClassic(b *testing.B) {
	f := getFixture(b)
	topo := f.eng.Topo
	prober := traceroute.NewProber(f.eng.Sim, "us-east1", benchSeed)
	mapper := bdrmap.FromTopology(topo, alias.NewProber(topo, benchSeed))
	servers := topo.ServersInCountry("US")
	if len(servers) > 120 {
		servers = servers[:120]
	}
	identical := func(a, c traceroute.Result) bool {
		if len(a.Hops) != len(c.Hops) {
			return false
		}
		for i := range a.Hops {
			if a.Hops[i].IP != c.Hops[i].IP {
				return false
			}
		}
		return true
	}
	run := func(mode traceroute.Mode) (stableFrac float64, links int) {
		stable := 0
		var traces []traceroute.Result
		for _, s := range servers {
			dst := traceroute.Destination{IP: s.IP, ASN: s.ASN, City: s.City, LinkID: -1, Tier: bgp.Premium}
			// Two back-to-back measurements of the same destination; a
			// classic prober draws fresh ephemeral ports each run.
			t1, err := prober.Trace(dst, traceroute.Options{Mode: mode, FlowID: uint64(s.ID)*2 + 1, ResponseLoss: -1})
			if err != nil {
				b.Fatal(err)
			}
			flow2 := uint64(s.ID)*2 + 1
			if mode == traceroute.Classic {
				flow2 = uint64(s.ID)*2 + 2
			}
			t2, err := prober.Trace(dst, traceroute.Options{Mode: mode, FlowID: flow2, ResponseLoss: -1})
			if err != nil {
				b.Fatal(err)
			}
			if identical(t1, t2) {
				stable++
			}
			traces = append(traces, t1, t2)
		}
		res, err := mapper.Infer("us-east1", traces)
		if err != nil {
			b.Fatal(err)
		}
		return float64(stable) / float64(len(servers)), res.LinkCount()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parisStable, parisLinks := run(traceroute.Paris)
		classicStable, classicLinks := run(traceroute.Classic)
		if i == 0 {
			b.ReportMetric(parisStable*100, "paris-stable-%")
			b.ReportMetric(classicStable*100, "classic-stable-%")
			b.ReportMetric(float64(parisLinks), "paris-links")
			b.ReportMetric(float64(classicLinks), "classic-links")
		}
	}
}

// BenchmarkAblationSelectionRule (D3): the per-link best-server rule vs a
// random pick per link, compared on selection latency.
func BenchmarkAblationSelectionRule(b *testing.B) {
	f := getFixture(b)
	sel := f.topoSel["us-east1"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var best []float64
		for _, s := range sel.Selected {
			best = append(best, s.RTTms)
		}
		bestMed, _ := stats.Median(best)
		if i == 0 {
			b.ReportMetric(bestMed, "best-rule-median-rtt-ms")
			b.ReportMetric(float64(len(sel.Selected)), "links-covered")
		}
	}
}

// BenchmarkAblationUplinkCap (D4): the asymmetric 1G/100M caps trade upload
// sensitivity for egress cost; a symmetric 1G uplink raises the egress bill
// proportionally.
func BenchmarkAblationUplinkCap(b *testing.B) {
	f := getFixture(b)
	sim := f.eng.Sim
	srv := f.topo["us-east1"].Selected[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capped, err := sim.Measure(netsim.TestSpec{
			Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: netsim.Upload,
			Time: core.CampaignStart, VMUpMbps: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		uncapped, err := sim.Measure(netsim.TestSpec{
			Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: netsim.Upload,
			Time: core.CampaignStart, VMUpMbps: 1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(capped.ThroughputMbps, "upload-100M-cap")
			b.ReportMetric(uncapped.ThroughputMbps, "upload-1G-cap")
			b.ReportMetric(uncapped.ThroughputMbps/capped.ThroughputMbps, "egress-cost-ratio")
		}
	}
}

// BenchmarkAblationTestOrder (D5): randomised vs fixed per-hour test order.
// With a fixed order every server is always measured at the same minute
// offset; randomisation spreads samples across the hour.
func BenchmarkAblationTestOrder(b *testing.B) {
	f := getFixture(b)
	servers := f.topo["us-west1"].Selected[:10]
	orch := orchestrator.New(f.eng.Sim, f.eng.Cloud, nil)
	run := func(fixed bool) float64 {
		sink := &orchestrator.SliceSink{}
		_, err := orch.Run(orchestrator.Config{
			Region: "us-west1", Servers: servers, Days: 3, Seed: benchSeed, FixedOrder: fixed,
		}, sink)
		if err != nil {
			b.Fatal(err)
		}
		// Distinct intra-hour offsets seen per server, averaged.
		offsets := make(map[int]map[int]bool)
		for _, m := range sink.Out {
			if offsets[m.ServerID] == nil {
				offsets[m.ServerID] = make(map[int]bool)
			}
			offsets[m.ServerID][m.Time.Minute()] = true
		}
		total := 0
		for _, set := range offsets {
			total += len(set)
		}
		return float64(total) / float64(len(offsets))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fixed := run(true)
		random := run(false)
		if i == 0 {
			b.ReportMetric(fixed, "fixed-order-slots")
			b.ReportMetric(random, "random-order-slots")
		}
	}
}

// --- Parallel campaign engine -------------------------------------------------------

// benchMultiRegionCampaign reruns the fixture's three biggest topology
// campaigns (3 days each) at a given per-round parallelism. The record
// streams are bit-identical at any parallelism — only the wall clock moves;
// compare BenchmarkCampaignParallelism1 vs BenchmarkCampaignParallelism4.
func benchMultiRegionCampaign(b *testing.B, parallelism int) {
	f := getFixture(b)
	regions := []string{"us-west1", "us-east1", "us-central1"}
	orch := orchestrator.New(f.eng.Sim, f.eng.Cloud, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tests := 0
		for _, region := range regions {
			sink := &orchestrator.SliceSink{}
			rep, err := orch.Run(orchestrator.Config{
				Region:      region,
				Servers:     f.topo[region].Selected,
				Days:        3,
				Seed:        benchSeed,
				Parallelism: parallelism,
			}, sink)
			if err != nil {
				b.Fatal(err)
			}
			tests += rep.Tests
		}
		if i == 0 {
			b.ReportMetric(float64(tests), "tests")
		}
	}
}

func BenchmarkCampaignParallelism1(b *testing.B) { benchMultiRegionCampaign(b, 1) }
func BenchmarkCampaignParallelism4(b *testing.B) { benchMultiRegionCampaign(b, 4) }

// benchPacedCampaign is the deployment-shaped wall-clock benchmark. In the
// real system a test occupies its measurement VM for tens of seconds while
// the network transfers bytes — the campaign is network-bound, not
// CPU-bound, which is exactly what the worker pool overlaps. The Measure
// hook paces each test at a small real occupancy so the overlap is
// measurable on any GOMAXPROCS (the pure-CPU pair above only speeds up on
// multi-core hosts). 26 servers → 52 tests/hour → 4 VMs per region, so
// parallelism 4 runs every VM concurrently.
func benchPacedCampaign(b *testing.B, parallelism int) {
	const occupancy = time.Millisecond
	f := getFixture(b)
	regions := []string{"us-west1", "us-east1", "us-central1"}
	servers := f.eng.Topo.ServersInCountry("US")
	if len(servers) < 26 {
		b.Skipf("only %d US servers at this scale", len(servers))
	}
	servers = servers[:26]
	orch := orchestrator.New(f.eng.Sim, f.eng.Cloud, nil)
	paced := func(spec netsim.TestSpec) (netsim.TestResult, error) {
		time.Sleep(occupancy)
		return f.eng.Sim.Measure(spec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, region := range regions {
			_, err := orch.Run(orchestrator.Config{
				Region:      region,
				Servers:     servers,
				Days:        1,
				Seed:        benchSeed,
				Parallelism: parallelism,
				Measure:     paced,
			}, &orchestrator.SliceSink{})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCampaignPacedParallelism1(b *testing.B) { benchPacedCampaign(b, 1) }
func BenchmarkCampaignPacedParallelism4(b *testing.B) { benchPacedCampaign(b, 4) }

// --- Extensions (§5) ----------------------------------------------------------------

// BenchmarkExtensionInband: the in-band estimator against the full
// throughput test — accuracy and egress cost.
func BenchmarkExtensionInband(b *testing.B) {
	f := getFixture(b)
	prober := inband.NewProber(f.eng.Sim, benchSeed)
	srv := f.topo["us-east1"].Selected[0]
	spec := netsim.TestSpec{
		Region: "us-east1", Server: srv, Tier: bgp.Premium, Dir: netsim.Download,
		Time: core.CampaignStart.Add(8 * 3600e9),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prober.Estimate(spec, inband.Train{Packets: 128})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			full, err := f.eng.Sim.Measure(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.AvailMbps, "inband-estimate-mbps")
			b.ReportMetric(full.ThroughputMbps, "speedtest-mbps")
			b.ReportMetric(res.CostRatio(15)*100, "probe-cost-%")
		}
	}
}

// BenchmarkExtensionHMM: agreement between the §5 HMM detector and the
// V > 0.5 threshold rule on the most congested pair.
func BenchmarkExtensionHMM(b *testing.B) {
	f := getFixture(b)
	series := analysis.GroupSeries(f.topo["us-west1"].Records, netsim.Download, bgp.Premium)
	det := congestion.NewDetector()
	// Most congested pair.
	bestIdx, bestEvents := 0, -1
	for i, s := range series {
		if n := len(det.Events(s)); n > bestEvents {
			bestEvents, bestIdx = n, i
		}
	}
	target := series[bestIdx]
	var mbps []float64
	for _, s := range target.Samples {
		mbps = append(mbps, s.Mbps)
	}
	thresholdLabels := make(map[int64]bool)
	for _, e := range det.Events(target) {
		thresholdLabels[e.Time.Unix()] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labels, model, err := hmm.DetectCongestion(mbps)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			agree := 0
			for j, s := range target.Samples {
				if labels[j] == thresholdLabels[s.Time.Unix()] {
					agree++
				}
			}
			score, _ := hmm.DiurnalScore(mbps)
			b.ReportMetric(float64(agree)/float64(len(labels))*100, "hmm-threshold-agreement-%")
			b.ReportMetric(score, "diurnal-acf24")
			b.ReportMetric(float64(model.Iterations), "baum-welch-iters")
		}
	}
}
